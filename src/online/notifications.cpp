#include "notifications.hpp"

#include <utility>

#include "common/error.hpp"

namespace flex::online {

void
NotificationBus::Bind(obs::Observability* obs)
{
  if (obs == nullptr) {
    emergencies_metric_ = nullptr;
    all_clears_metric_ = nullptr;
    deliveries_metric_ = nullptr;
    active_metric_ = nullptr;
    return;
  }
  obs::MetricsRegistry& metrics = obs->metrics();
  emergencies_metric_ = &metrics.counter("notifications.emergencies");
  all_clears_metric_ = &metrics.counter("notifications.all_clears");
  deliveries_metric_ = &metrics.counter("notifications.deliveries");
  active_metric_ = &metrics.gauge("notifications.active_emergencies");
}

void
NotificationBus::Subscribe(const std::string& workload, Callback callback)
{
  FLEX_REQUIRE(static_cast<bool>(callback), "null notification callback");
  subscriptions_.push_back(Subscription{workload, std::move(callback)});
}

void
NotificationBus::Publish(const PowerEmergencyNotification& notification)
{
  ++published_;
  if (notification.cleared) {
    if (all_clears_metric_ != nullptr)
      all_clears_metric_->Increment();
    active_emergencies_.erase(notification.workload);
  } else {
    if (emergencies_metric_ != nullptr)
      emergencies_metric_->Increment();
    active_emergencies_.insert(notification.workload);
  }
  if (active_metric_ != nullptr)
    active_metric_->Set(static_cast<double>(active_emergencies_.size()));
  for (const Subscription& subscription : subscriptions_) {
    if (subscription.workload.empty() ||
        subscription.workload == notification.workload) {
      if (deliveries_metric_ != nullptr)
        deliveries_metric_->Increment();
      subscription.callback(notification);
    }
  }
}

}  // namespace flex::online
