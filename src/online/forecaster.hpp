/**
 * @file
 * Rack power forecasting for the Flex controllers.
 *
 * Paper Section IV-D: the decision policy needs an estimate of each
 * rack's current power; "a recent snapshot or an estimate based on time
 * series models can be used". This module provides both: a last-value
 * estimator and a Holt double-exponential (level + trend) forecaster
 * that projects the rack's draw to the decision instant, which matters
 * because rack telemetry is ~2 s old by the time a decision is made.
 */
#ifndef FLEX_ONLINE_FORECASTER_HPP_
#define FLEX_ONLINE_FORECASTER_HPP_

#include <optional>
#include <vector>

#include "common/units.hpp"
#include "obs/observability.hpp"

namespace flex::online {

/** Holt's linear (level + trend) exponential smoothing for one signal. */
class HoltForecaster {
 public:
  /**
   * @param level_alpha smoothing of the level (0..1, higher = reactive)
   * @param trend_beta smoothing of the trend (0..1)
   */
  HoltForecaster(double level_alpha = 0.5, double trend_beta = 0.2);

  /**
   * Feeds an observation taken at @p observed_at. Returns the absolute
   * one-step-ahead forecast error in watts — |observation - what the
   * model predicted for this instant| — or nullopt when no prediction
   * existed (first observation, duplicate-bus redelivery).
   */
  std::optional<double> Observe(Seconds observed_at, Watts value);

  /**
   * Forecast at @p when (>= last observation). Returns nullopt until at
   * least one observation has arrived. The trend is damped beyond a few
   * sampling intervals so stale extrapolations stay conservative, and
   * forecasts never go negative.
   */
  std::optional<Watts> Forecast(Seconds when) const;

  /** Number of observations consumed. */
  int observations() const { return observations_; }

 private:
  double level_alpha_;
  double trend_beta_;
  int observations_ = 0;
  double level_ = 0.0;
  double trend_per_second_ = 0.0;
  Seconds last_time_{0.0};
  Seconds typical_interval_{2.0};
};

/**
 * A bank of per-rack forecasters, as the controller uses.
 */
class RackPowerForecasterBank {
 public:
  explicit RackPowerForecasterBank(int num_racks, double level_alpha = 0.5,
                                   double trend_beta = 0.2);

  /**
   * Routes forecaster metrics (one-step-ahead absolute error, total
   * observations) into @p obs; null detaches. Survives bank
   * reassignment only if re-bound afterwards.
   */
  void Bind(obs::Observability* obs);

  void Observe(int rack_id, Seconds observed_at, Watts value);

  /** Forecast for one rack; nullopt when that rack has no data yet. */
  std::optional<Watts> Forecast(int rack_id, Seconds when) const;

  int num_racks() const { return static_cast<int>(forecasters_.size()); }

 private:
  std::vector<HoltForecaster> forecasters_;
  obs::Histogram* abs_error_metric_ = nullptr;
  obs::Counter* observations_metric_ = nullptr;
};

}  // namespace flex::online

#endif  // FLEX_ONLINE_FORECASTER_HPP_
