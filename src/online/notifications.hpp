/**
 * @file
 * Power-emergency notifications to software-redundant workloads.
 *
 * Paper Section IV-D: "To prevent instability due to auto-recovery or
 * scaling-out, Flex-Online sends a notification about the power
 * emergency to the software-redundant workloads, which in turn recover
 * or scale out in a different AZ." Without the notification, a
 * service's auto-healing would fight the controller by restarting racks
 * Flex just shut down; with it, the service marks the local capacity as
 * administratively down and shifts load elsewhere until the emergency
 * clears.
 */
#ifndef FLEX_ONLINE_NOTIFICATIONS_HPP_
#define FLEX_ONLINE_NOTIFICATIONS_HPP_

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "obs/observability.hpp"

namespace flex::online {

/** One emergency (or all-clear) event for a workload. */
struct PowerEmergencyNotification {
  std::string workload;
  /** Racks the controller acted on (empty for an all-clear). */
  std::vector<int> racks;
  Seconds raised_at;
  int controller_replica = -1;
  /** False: emergency begins/extends. True: emergency over. */
  bool cleared = false;
};

/**
 * A simple in-process notification bus. Production Flex publishes to
 * the workloads' control planes; here subscribers are callbacks keyed
 * by workload name (or the empty string for a firehose subscription).
 */
class NotificationBus {
 public:
  using Callback = std::function<void(const PowerEmergencyNotification&)>;

  /**
   * Routes bus metrics into @p obs: notifications.emergencies /
   * all_clears / deliveries counters and the
   * notifications.active_emergencies gauge (workloads currently under
   * an uncleared emergency). Null detaches.
   */
  void Bind(obs::Observability* obs);

  /**
   * Subscribes to one workload's notifications; an empty @p workload
   * subscribes to everything.
   */
  void Subscribe(const std::string& workload, Callback callback);

  /** Publishes to all matching subscribers, in subscription order. */
  void Publish(const PowerEmergencyNotification& notification);

  std::size_t published_count() const { return published_; }

 private:
  struct Subscription {
    std::string workload;
    Callback callback;
  };
  std::vector<Subscription> subscriptions_;
  std::size_t published_ = 0;
  std::set<std::string> active_emergencies_;
  obs::Counter* emergencies_metric_ = nullptr;
  obs::Counter* all_clears_metric_ = nullptr;
  obs::Counter* deliveries_metric_ = nullptr;
  obs::Gauge* active_metric_ = nullptr;
};

}  // namespace flex::online

#endif  // FLEX_ONLINE_NOTIFICATIONS_HPP_
