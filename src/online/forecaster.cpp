#include "forecaster.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace flex::online {

HoltForecaster::HoltForecaster(double level_alpha, double trend_beta)
    : level_alpha_(level_alpha), trend_beta_(trend_beta)
{
  FLEX_REQUIRE(level_alpha_ > 0.0 && level_alpha_ <= 1.0,
               "level alpha must be in (0, 1]");
  FLEX_REQUIRE(trend_beta_ >= 0.0 && trend_beta_ <= 1.0,
               "trend beta must be in [0, 1]");
}

std::optional<double>
HoltForecaster::Observe(Seconds observed_at, Watts value)
{
  FLEX_REQUIRE(value >= Watts(0.0), "negative power observation");
  std::optional<double> abs_error;
  if (observations_ == 0) {
    level_ = value.value();
    trend_per_second_ = 0.0;
  } else {
    const double dt = (observed_at - last_time_).value();
    if (dt > 1e-9) {
      typical_interval_ =
          Seconds(0.8 * typical_interval_.value() + 0.2 * dt);
      const double previous_level = level_;
      const double predicted = level_ + trend_per_second_ * dt;
      abs_error = std::fabs(value.value() - predicted);
      level_ = level_alpha_ * value.value() +
               (1.0 - level_alpha_) * predicted;
      const double new_trend = (level_ - previous_level) / dt;
      trend_per_second_ = trend_beta_ * new_trend +
                          (1.0 - trend_beta_) * trend_per_second_;
    } else {
      // Duplicate delivery (redundant buses): just refresh the level.
      level_ = level_alpha_ * value.value() + (1.0 - level_alpha_) * level_;
    }
  }
  last_time_ = observed_at;
  ++observations_;
  return abs_error;
}

std::optional<Watts>
HoltForecaster::Forecast(Seconds when) const
{
  if (observations_ == 0)
    return std::nullopt;
  double horizon = std::max(0.0, (when - last_time_).value());
  // Damp the trend beyond a few sampling intervals: stale data should
  // decay toward the last level, not extrapolate off to infinity.
  const double max_extrapolation = 3.0 * typical_interval_.value();
  horizon = std::min(horizon, max_extrapolation);
  return Watts(std::max(0.0, level_ + trend_per_second_ * horizon));
}

RackPowerForecasterBank::RackPowerForecasterBank(int num_racks,
                                                 double level_alpha,
                                                 double trend_beta)
{
  FLEX_REQUIRE(num_racks >= 0, "negative rack count");
  forecasters_.assign(static_cast<std::size_t>(num_racks),
                      HoltForecaster(level_alpha, trend_beta));
}

void
RackPowerForecasterBank::Bind(obs::Observability* obs)
{
  if (obs == nullptr) {
    abs_error_metric_ = nullptr;
    observations_metric_ = nullptr;
    return;
  }
  obs::MetricsRegistry& metrics = obs->metrics();
  // Watt-scale exponential buckets: 1 W up to ~262 kW.
  abs_error_metric_ = &metrics.histogram(
      "forecaster.abs_error_w", obs::HistogramConfig::Exponential(1.0, 4.0, 10));
  observations_metric_ = &metrics.counter("forecaster.observations");
}

void
RackPowerForecasterBank::Observe(int rack_id, Seconds observed_at,
                                 Watts value)
{
  FLEX_REQUIRE(rack_id >= 0 && rack_id < num_racks(), "rack id out of range");
  const std::optional<double> abs_error =
      forecasters_[static_cast<std::size_t>(rack_id)].Observe(observed_at,
                                                              value);
  if (observations_metric_ != nullptr)
    observations_metric_->Increment();
  if (abs_error_metric_ != nullptr && abs_error.has_value())
    abs_error_metric_->Observe(*abs_error);
}

std::optional<Watts>
RackPowerForecasterBank::Forecast(int rack_id, Seconds when) const
{
  FLEX_REQUIRE(rack_id >= 0 && rack_id < num_racks(), "rack id out of range");
  return forecasters_[static_cast<std::size_t>(rack_id)].Forecast(when);
}

}  // namespace flex::online
