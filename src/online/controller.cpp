#include "controller.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "obs/log.hpp"
#include "obs/profiler.hpp"

namespace flex::online {

using telemetry::DeviceKind;
using telemetry::DeviceReading;
using workload::Category;

FlexController::FlexController(sim::EventQueue& queue,
                               const power::RoomTopology& topology,
                               std::vector<ManagedRack> racks,
                               actuation::ActuationPlane& plane,
                               ImpactRegistry impact, ControllerConfig config,
                               int replica_id, NotificationBus* notifications)
    : queue_(queue),
      topology_(topology),
      racks_(std::move(racks)),
      plane_(plane),
      impact_(std::move(impact)),
      config_(config),
      replica_id_(replica_id),
      notifications_(notifications),
      rack_forecasts_(0)
{
  FLEX_REQUIRE(config_.buffer >= Watts(0.0), "negative safety buffer");
  FLEX_REQUIRE(config_.release_headroom >= 0.0 &&
                   config_.release_headroom < 1.0,
               "release headroom must be in [0, 1)");
  ups_power_.assign(static_cast<std::size_t>(topology_.NumUpses()),
                    std::nullopt);
  int max_rack_id = -1;
  for (const ManagedRack& rack : racks_) {
    FLEX_REQUIRE(rack.rack_id >= 0, "negative rack id");
    max_rack_id = std::max(max_rack_id, rack.rack_id);
  }
  rack_power_.assign(static_cast<std::size_t>(max_rack_id) + 1, std::nullopt);
  rack_forecasts_ = RackPowerForecasterBank(max_rack_id + 1);

  if (config_.obs != nullptr) {
    rack_forecasts_.Bind(config_.obs);
    obs::MetricsRegistry& metrics = config_.obs->metrics();
    overdraw_metric_ = &metrics.counter("controller.overdraw_detections");
    actions_metric_ = &metrics.counter("controller.actions_issued");
    releases_metric_ = &metrics.counter("controller.releases");
    decision_us_metric_ = &metrics.histogram(
        "controller.decision_us", obs::HistogramConfig::WallMicros());
    enforce_latency_metric_ =
        &metrics.histogram("controller.enforce_latency_s");
  }
}

void
FlexController::OnReading(const DeviceReading& reading)
{
  if (suspended_)
    return;  // crashed replica: readings are lost, not queued
  if (reading.device.kind == DeviceKind::kUps) {
    if (reading.device.index < 0 ||
        reading.device.index >= topology_.NumUpses())
      return;  // not our room
    ups_power_[static_cast<std::size_t>(reading.device.index)] =
        reading.value;
    EvaluateOverdraw(reading);
    MaybeRelease();
  } else {
    if (reading.device.index < 0 ||
        static_cast<std::size_t>(reading.device.index) >= rack_power_.size())
      return;
    rack_power_[static_cast<std::size_t>(reading.device.index)] =
        reading.value;
    if (config_.use_forecaster) {
      rack_forecasts_.Observe(reading.device.index, reading.sampled_at,
                              reading.value);
    }
  }
}

DecisionInput
FlexController::BuildDecisionInput() const
{
  DecisionInput input;
  input.buffer = config_.buffer;
  input.impact = impact_;
  for (power::UpsId u = 0; u < topology_.NumUpses(); ++u) {
    input.ups_power.push_back(
        ups_power_[static_cast<std::size_t>(u)].value_or(Watts(0.0)));
    input.ups_limit.push_back(topology_.UpsCapacity(u));
  }
  for (power::PduPairId p = 0; p < topology_.NumPduPairs(); ++p)
    input.pdu_to_ups.push_back(topology_.UpsesOfPduPair(p));
  for (const ManagedRack& rack : racks_) {
    RackSnapshot snapshot;
    snapshot.rack_id = rack.rack_id;
    snapshot.workload = rack.workload;
    snapshot.category = rack.category;
    snapshot.pdu_pair = rack.pdu_pair;
    // Prefer a forecast projected to now (or the raw reading); fall back
    // to the conservative allocation, which only ever over-corrects.
    std::optional<Watts> estimate =
        config_.use_forecaster
            ? rack_forecasts_.Forecast(rack.rack_id, queue_.Now())
            : rack_power_[static_cast<std::size_t>(rack.rack_id)];
    snapshot.current_power = estimate.value_or(rack.allocated);
    snapshot.flex_power = rack.flex_power;
    input.racks.push_back(std::move(snapshot));
  }
  input.already_acted.assign(acted_racks_.begin(), acted_racks_.end());
  return input;
}

void
FlexController::EvaluateOverdraw(const DeviceReading& reading)
{
  bool overdraw = false;
  int overloaded_ups = -1;
  for (power::UpsId u = 0; u < topology_.NumUpses(); ++u) {
    const auto& power = ups_power_[static_cast<std::size_t>(u)];
    if (power && *power > topology_.UpsCapacity(u) - config_.buffer) {
      overdraw = true;
      if (overloaded_ups < 0)
        overloaded_ups = u;
    }
  }
  if (!overdraw)
    return;

  healthy_since_ = Seconds(-1.0);  // definitely not healthy
  const Seconds detected_at = queue_.Now();
  if (!episode_active_) {
    episode_active_ = true;
    ++stats_.overdraw_events;
    if (overdraw_metric_ != nullptr)
      overdraw_metric_->Increment();
    if (config_.obs != nullptr) {
      config_.obs->tracer().OnDetection(replica_id_, overloaded_ups,
                                        reading.sampled_at,
                                        reading.delivered_at, detected_at);
    }
    FLEX_LOG(obs::LogLevel::kInfo, "controller",
             "replica %d detected overdraw on UPS %d", replica_id_,
             overloaded_ups);
  }
  if ((detected_at - last_enforce_).value() <
      config_.action_cooldown.value())
    return;  // let in-flight actions land and surface in telemetry

  const auto decide_start = std::chrono::steady_clock::now();
  DecisionResult decision;
  {
    FLEX_PROFILE_PHASE("controller.decide");
    decision = DecideActions(BuildDecisionInput());
  }
  if (decision_us_metric_ != nullptr) {
    const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - decide_start);
    decision_us_metric_->Observe(static_cast<double>(elapsed.count()) / 1e3);
  }
  if (!decision.actions.empty()) {
    last_enforce_ = detected_at;
    if (config_.obs != nullptr) {
      config_.obs->tracer().OnDecision(
          replica_id_, static_cast<int>(decision.actions.size()),
          detected_at);
    }
    Enforce(decision.actions, detected_at);
  }
}

void
FlexController::Enforce(const std::vector<Action>& actions,
                        Seconds detected_at)
{
  // Track the slowest completion of this wave for latency reporting.
  auto pending = std::make_shared<int>(static_cast<int>(actions.size()));
  auto wave_done = [this, detected_at] {
    const double latency = (queue_.Now() - detected_at).value();
    stats_.enforcement_latencies.push_back(latency);
    if (enforce_latency_metric_ != nullptr)
      enforce_latency_metric_->Observe(latency);
    if (config_.obs != nullptr)
      config_.obs->tracer().OnEnforced(replica_id_, queue_.Now());
  };
  auto record_completion = [this, pending, wave_done](bool ok) {
    if (!ok)
      ++stats_.failed_commands;
    if (--*pending == 0)
      wave_done();
  };

  // Notify software-redundant workloads so they scale out in another AZ
  // instead of auto-recovering against us (Section IV-D).
  if (notifications_ != nullptr) {
    std::map<std::string, std::vector<int>> shutdowns_by_workload;
    for (const Action& action : actions) {
      if (action.type != ActionType::kShutdown ||
          acted_racks_.count(action.rack_id))
        continue;
      for (const ManagedRack& rack : racks_) {
        if (rack.rack_id == action.rack_id) {
          shutdowns_by_workload[rack.workload].push_back(action.rack_id);
          break;
        }
      }
    }
    for (auto& [workload, rack_ids] : shutdowns_by_workload) {
      PowerEmergencyNotification notification;
      notification.workload = workload;
      notification.racks = std::move(rack_ids);
      notification.raised_at = queue_.Now();
      notification.controller_replica = replica_id_;
      notifications_->Publish(notification);
      notified_workloads_.insert(workload);
    }
  }

  for (const Action& action : actions) {
    if (acted_racks_.count(action.rack_id)) {
      // Another telemetry wave raced us; command is idempotent anyway,
      // but skip to avoid inflating stats.
      if (--*pending == 0)
        wave_done();
      continue;
    }
    acted_racks_.insert(action.rack_id);
    action_types_[action.rack_id] = action.type;
    if (actions_metric_ != nullptr)
      actions_metric_->Increment();
    actuation::RackManager& rm = plane_.rack(action.rack_id);
    if (action.type == ActionType::kShutdown) {
      ++stats_.shutdown_commands;
      rm.Shutdown(record_completion);
    } else {
      ++stats_.throttle_commands;
      // Find the rack's flex power to install as the cap.
      Watts cap(0.0);
      for (const ManagedRack& rack : racks_) {
        if (rack.rack_id == action.rack_id) {
          cap = rack.flex_power;
          break;
        }
      }
      rm.Throttle(cap, record_completion);
    }
  }
}

void
FlexController::MaybeRelease()
{
  if (!episode_active_)
    return;
  // Healthy = every UPS reports power, none is near its limit, and the
  // room would fit with the configured headroom even after releasing.
  bool healthy = true;
  for (power::UpsId u = 0; u < topology_.NumUpses(); ++u) {
    const auto& power = ups_power_[static_cast<std::size_t>(u)];
    if (!power || *power <= Watts(1.0) ||
        *power > topology_.UpsCapacity(u) * (1.0 - config_.release_headroom)) {
      healthy = false;
      break;
    }
  }
  if (!healthy) {
    healthy_since_ = Seconds(-1.0);
    return;
  }
  if (healthy_since_.value() < 0.0) {
    healthy_since_ = queue_.Now();
    return;
  }
  if ((queue_.Now() - healthy_since_).value() <
      config_.release_delay.value())
    return;
  ReleaseAll();
}

void
FlexController::ReleaseAll()
{
  for (const auto& [rack_id, type] : action_types_) {
    actuation::RackManager& rm = plane_.rack(rack_id);
    if (type == ActionType::kShutdown) {
      ++stats_.restore_commands;
      rm.Restore([this](bool ok) {
        if (!ok)
          ++stats_.failed_commands;
      });
    } else {
      ++stats_.uncap_commands;
      rm.RemoveCap([this](bool ok) {
        if (!ok)
          ++stats_.failed_commands;
      });
    }
  }
  if (notifications_ != nullptr) {
    for (const std::string& workload : notified_workloads_) {
      PowerEmergencyNotification all_clear;
      all_clear.workload = workload;
      all_clear.raised_at = queue_.Now();
      all_clear.controller_replica = replica_id_;
      all_clear.cleared = true;
      notifications_->Publish(all_clear);
    }
    notified_workloads_.clear();
  }
  acted_racks_.clear();
  action_types_.clear();
  episode_active_ = false;
  healthy_since_ = Seconds(-1.0);
  if (releases_metric_ != nullptr)
    releases_metric_->Increment();
  if (config_.obs != nullptr)
    config_.obs->tracer().OnEpisodeClosed(replica_id_, queue_.Now());
  FLEX_LOG(obs::LogLevel::kInfo, "controller",
           "replica %d released all actions", replica_id_);
}

}  // namespace flex::online
