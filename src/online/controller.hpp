/**
 * @file
 * The Flex-Online controller (paper Section IV-D).
 *
 * Each controller instance subscribes to the telemetry pipeline, keeps
 * the latest power picture of every UPS and rack, and reacts to UPS
 * overdraw by running Algorithm 1 and enforcing the selected actions
 * through the rack managers. Controllers run multi-primary: several
 * replicas observe telemetry at skewed times and act independently;
 * because actions are idempotent the worst outcome is overcorrection,
 * never a missed overload.
 *
 * Once the failed UPS returns and the room has headroom again, the
 * controller lifts power caps and restores shut-down racks.
 */
#ifndef FLEX_ONLINE_CONTROLLER_HPP_
#define FLEX_ONLINE_CONTROLLER_HPP_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "actuation/rack_manager.hpp"
#include "obs/observability.hpp"
#include "online/decision.hpp"
#include "online/forecaster.hpp"
#include "online/notifications.hpp"
#include "power/topology.hpp"
#include "sim/event_queue.hpp"
#include "telemetry/pipeline.hpp"

namespace flex::online {

/** Static description of one rack the controller manages. */
struct ManagedRack {
  int rack_id = -1;
  std::string workload;
  workload::Category category = workload::Category::kNonRedundantNonCapable;
  power::PduPairId pdu_pair = -1;
  Watts allocated;
  /** Absolute flex power (lowest cap) for cap-able racks. */
  Watts flex_power;
};

/** Controller tuning. */
struct ControllerConfig {
  /** Safety buffer below the UPS limit (Algorithm 1 line 4). */
  Watts buffer = KiloWatts(20.0);
  /**
   * Headroom required before releasing actions: the room must fit under
   * (1 - release_headroom) of every UPS limit with all UPSes healthy.
   */
  double release_headroom = 0.05;
  /** How long conditions must look healthy before releasing. */
  Seconds release_delay = Seconds(30.0);
  /**
   * Minimum time between decision waves. Telemetry lags enforcement, so
   * re-deciding on every reading would overcorrect heavily; the cooldown
   * gives actions time to land and show up in the data. Overcorrection
   * across waves (and across replicas) remains possible and safe.
   */
  Seconds action_cooldown = Seconds(4.0);
  /**
   * Estimate rack power with a Holt level+trend forecaster projected to
   * the decision instant instead of the raw last reading (Section IV-D
   * offers both options). Raw readings are ~2 s stale by decision time.
   */
  bool use_forecaster = true;
  /** Optional instrumentation sink (null: not instrumented). */
  obs::Observability* obs = nullptr;
};

/** Counters and timing the controller exposes for evaluation. */
struct ControllerStats {
  int overdraw_events = 0;        ///< distinct overdraw episodes detected
  int throttle_commands = 0;
  int shutdown_commands = 0;
  int restore_commands = 0;
  int uncap_commands = 0;
  int failed_commands = 0;
  /** Detection -> last enforcement completion, per episode (seconds). */
  std::vector<double> enforcement_latencies;
};

/**
 * One Flex-Online controller replica.
 */
class FlexController {
 public:
  FlexController(sim::EventQueue& queue, const power::RoomTopology& topology,
                 std::vector<ManagedRack> racks,
                 actuation::ActuationPlane& plane, ImpactRegistry impact,
                 ControllerConfig config, int replica_id,
                 NotificationBus* notifications = nullptr);

  /** Telemetry entry point; wire via TelemetryPipeline::Subscribe. */
  void OnReading(const telemetry::DeviceReading& reading);

  /** Racks this controller has acted on (and not yet released). */
  const std::set<int>& acted_racks() const { return acted_racks_; }

  const ControllerStats& stats() const { return stats_; }
  int replica_id() const { return replica_id_; }

  /** True while corrective actions are in force. */
  bool actions_in_force() const { return !acted_racks_.empty(); }

  /**
   * Suspends/resumes this replica (process crash and restart). While
   * suspended the replica drops readings; on resume it picks up from its
   * pre-crash state, which may be stale — acting on it is safe because
   * actions are idempotent and only ever overcorrect.
   */
  void SetSuspended(bool suspended) { suspended_ = suspended; }
  bool suspended() const { return suspended_; }

 private:
  void EvaluateOverdraw(const telemetry::DeviceReading& reading);
  void Enforce(const std::vector<Action>& actions, Seconds detected_at);
  void MaybeRelease();
  void ReleaseAll();

  /** Builds Algorithm 1's input from the latest telemetry. */
  DecisionInput BuildDecisionInput() const;

  sim::EventQueue& queue_;
  const power::RoomTopology& topology_;
  std::vector<ManagedRack> racks_;
  actuation::ActuationPlane& plane_;
  ImpactRegistry impact_;
  ControllerConfig config_;
  int replica_id_;
  NotificationBus* notifications_;  // optional; not owned
  std::set<std::string> notified_workloads_;

  /** Latest telemetry per device. */
  std::vector<std::optional<Watts>> ups_power_;
  std::vector<std::optional<Watts>> rack_power_;
  RackPowerForecasterBank rack_forecasts_;

  std::set<int> acted_racks_;
  std::map<int, ActionType> action_types_;  // what we did to each rack
  bool suspended_ = false;
  bool episode_active_ = false;
  Seconds healthy_since_{-1.0};
  Seconds last_enforce_{-1e18};
  ControllerStats stats_;

  // Cached metric objects (registry lookups stay off the hot path).
  obs::Counter* overdraw_metric_ = nullptr;
  obs::Counter* actions_metric_ = nullptr;
  obs::Counter* releases_metric_ = nullptr;
  obs::Histogram* decision_us_metric_ = nullptr;
  obs::Histogram* enforce_latency_metric_ = nullptr;
};

}  // namespace flex::online

#endif  // FLEX_ONLINE_CONTROLLER_HPP_
