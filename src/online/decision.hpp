/**
 * @file
 * Flex-Online's runtime decision policy (paper Algorithm 1).
 *
 * When a UPS overdraw is detected, the policy greedily selects racks to
 * shut down (software-redundant) or throttle (non-redundant cap-able),
 * one at a time, always choosing the candidate whose action leaves its
 * workload with the smallest total impact, until the estimated power of
 * every UPS is back below its limit minus a safety buffer.
 */
#ifndef FLEX_ONLINE_DECISION_HPP_
#define FLEX_ONLINE_DECISION_HPP_

#include <map>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "power/topology.hpp"
#include "workload/impact.hpp"

namespace flex::online {

/** The two corrective actions Flex-Online can take on a rack. */
enum class ActionType { kThrottle, kShutdown };

/** The controller's view of one rack at decision time. */
struct RackSnapshot {
  int rack_id = -1;
  std::string workload;
  workload::Category category = workload::Category::kNonRedundantNonCapable;
  power::PduPairId pdu_pair = -1;
  /** Most recent telemetry (or model estimate) of the rack's draw. */
  Watts current_power;
  /** Absolute flex power (lowest enforceable cap); cap-able racks only. */
  Watts flex_power;
};

/** One selected corrective action. */
struct Action {
  int rack_id = -1;
  ActionType type = ActionType::kThrottle;
  /** Estimated power recovered by the action (R_r in Algorithm 1). */
  Watts estimated_recovery;
  /** The workload's total impact after this action (I_w). */
  double impact_after = 0.0;
};

/**
 * Per-workload impact functions. Workloads without an entry get the
 * paper's default behaviour: cap-able workloads are throttled first,
 * software-redundant ones shut down only if still necessary.
 */
using ImpactRegistry = std::map<std::string, workload::ImpactFunction>;

/** Inputs to one decision round. */
struct DecisionInput {
  /** Current (post-failover) per-UPS power; a failed UPS reads ~0. */
  std::vector<Watts> ups_power;
  /** Per-UPS power limit (rated capacity). */
  std::vector<Watts> ups_limit;
  /** All racks, with their PDU pairs and latest power. */
  std::vector<RackSnapshot> racks;
  /** Which UPSes each PDU pair connects (from the room topology). */
  std::vector<std::pair<power::UpsId, power::UpsId>> pdu_to_ups;
  /** Impact functions; may be empty (defaults apply). */
  ImpactRegistry impact;
  /** Safety buffer subtracted from limits (mis-estimation guard). */
  Watts buffer = KiloWatts(20.0);
  /** Racks already acted on (idempotence across controller replicas). */
  std::vector<int> already_acted;
};

/** Outcome of one decision round. */
struct DecisionResult {
  std::vector<Action> actions;
  /** True when the estimated power of every UPS is under its limit. */
  bool satisfied = false;
  /** Greedy iterations executed. */
  int iterations = 0;
  /** Estimated per-UPS power after all selected actions. */
  std::vector<Watts> projected_ups_power;
};

/**
 * Runs Algorithm 1 and returns the selected action set.
 *
 * Deterministic: PickRack prefers racks attached to overloaded UPSes and
 * breaks ties toward larger recoverable power, then lower rack id.
 */
DecisionResult DecideActions(const DecisionInput& input);

/**
 * The paper's default impact when a workload registered no function:
 * cap-able workloads tolerate throttling with modest impact, while
 * software-redundant ones are only shut down after cap-able options are
 * exhausted.
 */
workload::ImpactFunction DefaultImpact(workload::Category category);

}  // namespace flex::online

#endif  // FLEX_ONLINE_DECISION_HPP_
