#include "cost.hpp"

#include "common/error.hpp"

namespace flex::analysis {

CostResult
EvaluateCost(const CostParams& params)
{
  FLEX_REQUIRE(params.site_power > Watts(0.0), "site power must be positive");
  FLEX_REQUIRE(params.redundancy_y >= 1 &&
                   params.redundancy_y < params.redundancy_x,
               "xN/y requires 1 <= y < x");
  FLEX_REQUIRE(params.dollars_per_watt > 0.0, "cost per watt must be positive");
  FLEX_REQUIRE(params.infrastructure_premium >= 0.0,
               "premium must be non-negative");

  CostResult result;
  result.additional_server_fraction =
      static_cast<double>(params.redundancy_x) /
          static_cast<double>(params.redundancy_y) -
      1.0;
  // A conventional site of this size hosts site_power of IT load; Flex
  // fits additional_server_fraction more into the same shell, capacity
  // the provider would otherwise build at $/W.
  result.additional_capacity =
      params.site_power * result.additional_server_fraction;
  result.gross_savings_dollars =
      result.additional_capacity.value() * params.dollars_per_watt;
  result.premium_dollars = params.infrastructure_premium *
                           params.site_power.value() *
                           params.dollars_per_watt;
  result.net_savings_dollars =
      result.gross_savings_dollars - result.premium_dollars;
  return result;
}

}  // namespace flex::analysis
