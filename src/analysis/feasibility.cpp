#include "feasibility.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace flex::analysis {

namespace {

double
NormalCdf(double z)
{
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double
NormalPdf(double z)
{
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
}

/** E[max(0, X - k)] for X ~ N(mean, stddev): the expected excess. */
double
ExpectedExcess(double mean, double stddev, double k)
{
  if (stddev <= 0.0)
    return std::max(0.0, mean - k);
  const double z = (mean - k) / stddev;
  return (mean - k) * NormalCdf(z) + stddev * NormalPdf(z);
}

}  // namespace

FeasibilityModel::FeasibilityModel(FeasibilityParams params)
    : params_(params)
{
  FLEX_REQUIRE(params_.peak_stddev > 0.0 && params_.offpeak_stddev > 0.0,
               "utilization stddevs must be positive");
  FLEX_REQUIRE(params_.offpeak_time_fraction >= 0.0 &&
                   params_.offpeak_time_fraction <= 1.0,
               "off-peak time fraction must be in [0, 1]");
  FLEX_REQUIRE(params_.failover_budget_fraction > 0.0 &&
                   params_.failover_budget_fraction < 1.0,
               "failover budget fraction must be in (0, 1)");
  FLEX_REQUIRE(params_.capable_power_fraction >= 0.0 &&
                   params_.capable_power_fraction <= 1.0,
               "capable power fraction must be in [0, 1]");
}

double
FeasibilityModel::FractionOfTimeAbove(double threshold) const
{
  const double p_peak =
      1.0 - NormalCdf((threshold - params_.peak_mean_utilization) /
                      params_.peak_stddev);
  const double offpeak_mean =
      params_.peak_mean_utilization - params_.offpeak_dip;
  const double p_offpeak =
      1.0 - NormalCdf((threshold - offpeak_mean) / params_.offpeak_stddev);
  return (1.0 - params_.offpeak_time_fraction) * p_peak +
         params_.offpeak_time_fraction * p_offpeak;
}

double
FeasibilityModel::ShutdownThresholdUtilization() const
{
  // At room utilization u, a single-supply loss leaves an overload of
  // (u - b) x provisioned on the survivors. Throttling every cap-able
  // rack recovers c x E[max(0, rack draw - flex)] where rack draws
  // spread around u; shutdown becomes necessary once the overload
  // exceeds that recovery. Racks spread around the room mean with the
  // same stddev the rack-power model uses.
  const double rack_stddev = 0.10;
  const double b = params_.failover_budget_fraction;
  const double c = params_.capable_power_fraction;
  const double flex = params_.mean_flex_power_fraction;

  auto throttling_suffices = [&](double u) {
    const double overload = std::max(0.0, u - b);
    const double recovery = c * ExpectedExcess(u, rack_stddev, flex);
    return recovery >= overload;
  };

  // Bisection over u in [b, 1]; throttling suffices at u = b (overload
  // zero) and typically fails by u = 1.
  if (throttling_suffices(1.0))
    return 1.0;
  double lo = b;
  double hi = 1.0;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (throttling_suffices(mid))
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

FeasibilityResult
FeasibilityModel::Evaluate() const
{
  FeasibilityResult result;
  constexpr double kHoursPerYear = 24.0 * 365.0;

  result.p_high_utilization =
      FractionOfTimeAbove(params_.failover_budget_fraction);
  result.p_unplanned_active =
      params_.unplanned_hours_per_year / kHoursPerYear;

  // Planned maintenance is scheduled into the nightly/weekend dips, so
  // it (almost) never coincides with high utilization; unplanned events
  // strike at a random instant.
  double p_planned_coincides = 0.0;
  if (!params_.planned_in_low_utilization_windows) {
    p_planned_coincides = (params_.planned_hours_per_year / kHoursPerYear) *
                          result.p_high_utilization;
  }
  result.p_corrective_needed =
      result.p_unplanned_active * result.p_high_utilization +
      p_planned_coincides;
  result.room_availability = 1.0 - result.p_corrective_needed;
  result.room_availability_nines =
      -std::log10(result.p_corrective_needed);

  result.shutdown_threshold_utilization = ShutdownThresholdUtilization();
  result.p_shutdown_needed =
      result.p_unplanned_active *
      FractionOfTimeAbove(result.shutdown_threshold_utilization);
  // Conservative: while a shutdown event is active, assume every
  // software-redundant server is down.
  result.sr_availability = 1.0 - result.p_shutdown_needed;
  result.sr_availability_nines = -std::log10(result.p_shutdown_needed);
  return result;
}

MonteCarloResult
FeasibilityModel::MonteCarlo(std::uint64_t samples, std::uint64_t seed,
                             int threads) const
{
  FLEX_REQUIRE(samples > 0, "monte carlo needs at least one sample");
  FLEX_REQUIRE(threads >= 0, "negative thread count");
  constexpr std::uint64_t kChunkSamples = 65536;

  const double threshold_high = params_.failover_budget_fraction;
  const double threshold_shutdown = ShutdownThresholdUtilization();
  const double offpeak_mean =
      params_.peak_mean_utilization - params_.offpeak_dip;

  const std::uint64_t num_chunks =
      (samples + kChunkSamples - 1) / kChunkSamples;
  struct ChunkCounts {
    std::uint64_t above_high = 0;
    std::uint64_t above_shutdown = 0;
  };
  std::vector<ChunkCounts> counts(static_cast<std::size_t>(num_chunks));

  // Chunk size and per-chunk RNG stream are fixed regardless of thread
  // count, so the merged counts (and the hash) never depend on lane
  // scheduling.
  const auto run_chunk = [&](std::uint64_t chunk) {
    const std::uint64_t chunk_samples =
        chunk + 1 == num_chunks ? samples - chunk * kChunkSamples
                                : kChunkSamples;
    Rng rng(seed ^ SplitMix64(chunk + 1).Next());
    ChunkCounts& c = counts[static_cast<std::size_t>(chunk)];
    for (std::uint64_t i = 0; i < chunk_samples; ++i) {
      const bool offpeak = rng.Bernoulli(params_.offpeak_time_fraction);
      const double u = offpeak
                           ? rng.Normal(offpeak_mean, params_.offpeak_stddev)
                           : rng.Normal(params_.peak_mean_utilization,
                                        params_.peak_stddev);
      if (u > threshold_high)
        ++c.above_high;
      if (u > threshold_shutdown)
        ++c.above_shutdown;
    }
  };

  MonteCarloResult mc;
  mc.samples = samples;
  if (threads == 1 || num_chunks == 1) {
    mc.lanes = 1;
    for (std::uint64_t chunk = 0; chunk < num_chunks; ++chunk)
      run_chunk(chunk);
  } else {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(static_cast<std::size_t>(num_chunks));
    for (std::uint64_t chunk = 0; chunk < num_chunks; ++chunk)
      tasks.push_back([&run_chunk, chunk] { run_chunk(chunk); });
    if (threads == 0) {
      common::ThreadPool& pool = common::ThreadPool::Shared();
      mc.lanes = pool.size();
      pool.Run(std::move(tasks));
    } else {
      common::ThreadPool pool(threads);
      mc.lanes = pool.size();
      pool.Run(std::move(tasks));
    }
  }

  Fnv1a hash;
  std::uint64_t above_high = 0;
  std::uint64_t above_shutdown = 0;
  for (const ChunkCounts& c : counts) {
    above_high += c.above_high;
    above_shutdown += c.above_shutdown;
    hash.AddU64(c.above_high);
    hash.AddU64(c.above_shutdown);
  }
  mc.sample_hash = hash.value();

  // Compose the sampled exceedance fractions with the same analytic
  // maintenance terms Evaluate() uses.
  constexpr double kHoursPerYear = 24.0 * 365.0;
  constexpr double kMinProbability = 1e-300;  // keep -log10 finite
  FeasibilityResult& r = mc.result;
  r.p_high_utilization =
      static_cast<double>(above_high) / static_cast<double>(samples);
  r.p_unplanned_active = params_.unplanned_hours_per_year / kHoursPerYear;
  double p_planned_coincides = 0.0;
  if (!params_.planned_in_low_utilization_windows) {
    p_planned_coincides = (params_.planned_hours_per_year / kHoursPerYear) *
                          r.p_high_utilization;
  }
  r.p_corrective_needed =
      r.p_unplanned_active * r.p_high_utilization + p_planned_coincides;
  r.room_availability = 1.0 - r.p_corrective_needed;
  r.room_availability_nines =
      -std::log10(std::max(r.p_corrective_needed, kMinProbability));
  r.shutdown_threshold_utilization = threshold_shutdown;
  r.p_shutdown_needed =
      r.p_unplanned_active *
      (static_cast<double>(above_shutdown) / static_cast<double>(samples));
  r.sr_availability = 1.0 - r.p_shutdown_needed;
  r.sr_availability_nines =
      -std::log10(std::max(r.p_shutdown_needed, kMinProbability));
  return mc;
}

}  // namespace flex::analysis
