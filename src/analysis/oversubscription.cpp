#include "oversubscription.hpp"

#include <cmath>

#include "common/error.hpp"

namespace flex::analysis {

double
InverseNormalCdf(double p)
{
  FLEX_REQUIRE(p > 0.0 && p < 1.0, "quantile must be in (0, 1)");
  // Acklam's rational approximation (relative error < 1.15e-9).
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double q;
  double r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

OversubscriptionResult
EvaluateOversubscription(const OversubscriptionParams& params)
{
  FLEX_REQUIRE(params.mean_utilization > 0.0 &&
                   params.mean_utilization <= 1.0,
               "mean utilization must be in (0, 1]");
  FLEX_REQUIRE(params.utilization_stddev >= 0.0, "negative stddev");
  FLEX_REQUIRE(params.num_racks >= 1, "need at least one rack");
  FLEX_REQUIRE(params.violation_probability > 0.0 &&
                   params.violation_probability < 1.0,
               "violation probability must be in (0, 1)");

  OversubscriptionResult result;
  // Aggregate utilization of n independent racks: mean mu, stddev
  // sigma / sqrt(n). Provision for the (1 - violation) quantile.
  const double z = InverseNormalCdf(1.0 - params.violation_probability);
  const double aggregate_stddev =
      params.utilization_stddev / std::sqrt(
          static_cast<double>(params.num_racks));
  result.provisioning_quantile =
      std::min(1.0, params.mean_utilization + z * aggregate_stddev);
  result.oversubscription_ratio = 1.0 / result.provisioning_quantile;
  return result;
}

double
CombinedDensityGain(int redundancy_x, int redundancy_y,
                    double oversubscription_ratio)
{
  FLEX_REQUIRE(redundancy_y >= 1 && redundancy_y < redundancy_x,
               "xN/y requires 1 <= y < x");
  FLEX_REQUIRE(oversubscription_ratio >= 1.0,
               "oversubscription ratio must be >= 1");
  const double flex_factor =
      static_cast<double>(redundancy_x) / static_cast<double>(redundancy_y);
  return flex_factor * oversubscription_ratio - 1.0;
}

}  // namespace flex::analysis
