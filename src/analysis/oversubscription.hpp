/**
 * @file
 * Power oversubscription composed with Flex.
 *
 * Paper Sections I and VII: "Allocating reserved power is orthogonal to
 * power oversubscription, i.e. allocated power that is underutilized
 * can be oversubscribed" and "Oversubscription can be used in addition
 * to Flex to further increase server density". This module computes a
 * statistically safe oversubscription ratio from historical utilization
 * (the classic Fan et al. / provisioning-by-percentile argument) and
 * the combined density gain when stacked with Flex's x/y - 1.
 */
#ifndef FLEX_ANALYSIS_OVERSUBSCRIPTION_HPP_
#define FLEX_ANALYSIS_OVERSUBSCRIPTION_HPP_

namespace flex::analysis {

/** Inputs to the oversubscription model. */
struct OversubscriptionParams {
  /** Mean per-rack utilization of the allocated (nameplate) power. */
  double mean_utilization = 0.72;
  /** Per-rack utilization standard deviation. */
  double utilization_stddev = 0.10;
  /** Racks sharing the budget (aggregation smooths the peaks). */
  int num_racks = 600;
  /**
   * Acceptable probability that the aggregate draw exceeds the budget
   * at any sampling instant (capping absorbs the excursions).
   */
  double violation_probability = 1e-4;
};

/** Outputs of the oversubscription model. */
struct OversubscriptionResult {
  /** Aggregate draw quantile used for provisioning (fraction of
      nameplate). */
  double provisioning_quantile = 0.0;
  /** Servers deployable per watt of budget, relative to nameplate
      provisioning (>= 1). */
  double oversubscription_ratio = 1.0;
};

/**
 * Safe oversubscription ratio: aggregate utilization of n racks
 * concentrates around the mean (stddev shrinks with sqrt(n)), so the
 * budget only needs to cover a high quantile of the aggregate, not the
 * sum of nameplates.
 */
OversubscriptionResult EvaluateOversubscription(
    const OversubscriptionParams& params);

/**
 * Combined density gain of Flex (x/y - 1 more servers from the power
 * reserve) stacked with oversubscription (more servers per allocated
 * watt): (x/y) * ratio - 1, relative to a conventional room without
 * either.
 */
double CombinedDensityGain(int redundancy_x, int redundancy_y,
                           double oversubscription_ratio);

/** Inverse standard normal CDF (Acklam's approximation). */
double InverseNormalCdf(double p);

}  // namespace flex::analysis

#endif  // FLEX_ANALYSIS_OVERSUBSCRIPTION_HPP_
