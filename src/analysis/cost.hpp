/**
 * @file
 * Construction cost savings model (paper Sections I and VI).
 *
 * A zero-reserved-power datacenter deploys x/y - 1 more servers (33% in
 * a 4N/3 design) into the same site; the provider avoids building that
 * capacity elsewhere at $5-$10 per watt, minus a ~3% infrastructure
 * premium for larger batteries and higher-rated upstream devices.
 */
#ifndef FLEX_ANALYSIS_COST_HPP_
#define FLEX_ANALYSIS_COST_HPP_

#include "common/units.hpp"

namespace flex::analysis {

/** Inputs of the savings model. */
struct CostParams {
  /** Total site IT power (the paper's example: a 128 MW site). */
  Watts site_power = MegaWatts(128.0);
  /** Redundancy shape (4N/3 by default). */
  int redundancy_x = 4;
  int redundancy_y = 3;
  /** Construction cost per watt (paper: $5-$10/W). */
  double dollars_per_watt = 5.0;
  /**
   * Fractional cost premium of Flex-ready infrastructure (bigger UPS
   * batteries, higher-rated feeders/transformers; paper: ~3%).
   */
  double infrastructure_premium = 0.03;
};

/** Outputs of the savings model. */
struct CostResult {
  /** Extra deployable server power enabled by Flex. */
  Watts additional_capacity;
  /** Relative server count increase (x/y - 1). */
  double additional_server_fraction = 0.0;
  /** Avoided construction cost (before the premium). */
  double gross_savings_dollars = 0.0;
  /** Premium paid for the upgraded infrastructure. */
  double premium_dollars = 0.0;
  /** Net savings. */
  double net_savings_dollars = 0.0;
};

/** Evaluates the savings model. */
CostResult EvaluateCost(const CostParams& params);

}  // namespace flex::analysis

#endif  // FLEX_ANALYSIS_COST_HPP_
