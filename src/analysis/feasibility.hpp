/**
 * @file
 * Flex feasibility analysis (paper Section III).
 *
 * Estimates the joint probability that a maintenance event coincides
 * with power utilization high enough to need corrective actions, and
 * derives the resulting availability for software-redundant and
 * non-redundant workloads. Parameter defaults reproduce the paper's
 * dataset: peak utilizations of 65-80% of the non-reserve provisioned
 * power, ~1 h/yr of unplanned and ~40 h/yr of planned maintenance, and
 * night/weekend utilization dips of 15-19% lasting 6-12 hours.
 */
#ifndef FLEX_ANALYSIS_FEASIBILITY_HPP_
#define FLEX_ANALYSIS_FEASIBILITY_HPP_

#include <cstdint>

namespace flex::analysis {

/** Inputs of the feasibility model. */
struct FeasibilityParams {
  // --- Utilization model (fractions of total provisioned power) ----------
  /**
   * Mean peak-hours utilization. The paper reports peaks of 65-80% of the
   * *non-reserve* budget, i.e. 0.49-0.60 of total provisioned power in a
   * 4N/3 room; in a Flex room the extra servers push utilization up, so
   * the defaults describe a fully allocated zero-reserve room.
   */
  double peak_mean_utilization = 0.72;
  double peak_stddev = 0.05;
  /** Off-peak utilization dip relative to peak (paper: 15-19%). */
  double offpeak_dip = 0.17;
  double offpeak_stddev = 0.05;
  /** Fraction of time in the off-peak regime (nights + weekends). */
  double offpeak_time_fraction = 0.55;

  // --- Maintenance model --------------------------------------------------
  /** Unplanned downtime of a power supply, hours per year. */
  double unplanned_hours_per_year = 1.0;
  /** Planned maintenance downtime, hours per year. */
  double planned_hours_per_year = 40.0;
  /**
   * Whether planned maintenance is scheduled into low-utilization
   * windows (the paper argues the 6-12 h nightly dips always suffice).
   */
  bool planned_in_low_utilization_windows = true;

  // --- Room / workload model ----------------------------------------------
  /** Failover budget as a fraction of provisioned power (y/x). */
  double failover_budget_fraction = 0.75;
  /** Capable fraction of allocated power (paper Fig. 3: 56%). */
  double capable_power_fraction = 0.56;
  /** Software-redundant fraction of allocated power (13%). */
  double software_redundant_power_fraction = 0.13;
  /** Mean flex power fraction of cap-able racks (0.75-0.85). */
  double mean_flex_power_fraction = 0.80;
};

/** Outputs of the feasibility model. */
struct FeasibilityResult {
  /** P(utilization exceeds the corrective-action threshold). */
  double p_high_utilization = 0.0;
  /** P(an unplanned supply-loss event is active at a random instant). */
  double p_unplanned_active = 0.0;
  /** P(corrective actions needed at a random instant). */
  double p_corrective_needed = 0.0;
  /** Fraction of time the room needs no corrective action. */
  double room_availability = 0.0;
  /** Number of nines of room availability. */
  double room_availability_nines = 0.0;
  /** Utilization above which throttling alone cannot recover enough. */
  double shutdown_threshold_utilization = 0.0;
  /** P(any software-redundant rack must shut down at a random instant). */
  double p_shutdown_needed = 0.0;
  /** Availability of software-redundant servers (fraction of time up). */
  double sr_availability = 0.0;
  double sr_availability_nines = 0.0;
};

/** Monte Carlo cross-check of the closed-form model. */
struct MonteCarloResult {
  /** Evaluate()'s outputs with the sampled exceedance fractions. */
  FeasibilityResult result;
  std::uint64_t samples = 0;
  /** Thread-pool lanes the chunks ran on. */
  int lanes = 0;
  /** FNV-1a over per-chunk counts in chunk order (thread-invariant). */
  std::uint64_t sample_hash = 0;
};

/**
 * Analytic feasibility model: closed-form mixture-of-normals utilization
 * distribution crossed with maintenance event probabilities.
 */
class FeasibilityModel {
 public:
  explicit FeasibilityModel(FeasibilityParams params = {});

  /** Runs the full Section III analysis. */
  FeasibilityResult Evaluate() const;

  /**
   * Monte Carlo estimate of the utilization exceedance probabilities,
   * composed with the same analytic maintenance terms as Evaluate().
   * Sampling the maintenance coincidence directly would need ~1e9
   * samples to resolve the paper's five-nines tail, so only the
   * utilization mixture is sampled. Work fans out in fixed 65536-sample
   * chunks across thread-pool lanes (threads: 0 = shared pool,
   * 1 = inline serial, n = private pool) with one RNG stream per chunk
   * and a serial chunk-order merge — bit-identical for any thread
   * count.
   */
  MonteCarloResult MonteCarlo(std::uint64_t samples, std::uint64_t seed,
                              int threads = 0) const;

  /** P(utilization > @p threshold) under the mixture model. */
  double FractionOfTimeAbove(double threshold) const;

  /**
   * Utilization above which the post-failover overload exceeds what
   * shutting down nothing and throttling every cap-able rack recovers.
   */
  double ShutdownThresholdUtilization() const;

  const FeasibilityParams& params() const { return params_; }

 private:
  FeasibilityParams params_;
};

}  // namespace flex::analysis

#endif  // FLEX_ANALYSIS_FEASIBILITY_HPP_
