/**
 * @file
 * Flex-Offline: ILP-based batched workload placement (paper Section IV-B).
 *
 * Batches the short-term demand (33% of room capacity for the Short
 * variant, 66% for Long, everything for Oracle), builds the paper's
 * Eq. 1-5 integer program per batch — augmented with a linearized
 * throttling-imbalance soft objective, one of the "additional soft
 * constraints" the paper mentions using in its evaluation — and solves
 * it with the bundled branch-and-bound solver under a wall-clock budget
 * (the paper stops Gurobi after 5 minutes).
 */
#ifndef FLEX_OFFLINE_FLEX_OFFLINE_HPP_
#define FLEX_OFFLINE_FLEX_OFFLINE_HPP_

#include <string>
#include <vector>

#include "obs/observability.hpp"
#include "offline/policies.hpp"
#include "solver/branch_and_bound.hpp"
#include "solver/solver_trace.hpp"

namespace flex::offline {

/** Knobs for the Flex-Offline placement policy. */
struct FlexOfflineConfig {
  /**
   * Batch size as a fraction of the room's provisioned power. 0.33 for
   * Short, 0.66 for Long; anything >= the trace's demand multiple
   * behaves as Oracle (one batch).
   */
  double batch_capacity_fraction = 0.33;

  /**
   * Weight (dimensionless, applied to megawatt-scaled spreads) of the
   * throttling/shutdown balance penalties relative to placed power. Keep
   * well below 1 so stranded power dominates the objective.
   */
  double imbalance_weight = 0.2;

  /** Budget for each batch's MILP solve. */
  solver::BranchAndBoundSolver::Options solver;

  /**
   * Uncertain long-term demand forecast (the paper's stated future
   * work): deployments expected to arrive after the certain horizon.
   * They join every batch's ILP with their objective discounted by
   * forecast_confidence — reserving well-shaped room for probable
   * demand — but are never committed; only certain deployments place.
   * Forecast entries whose id matches a certain deployment are ignored
   * once that deployment is in or before the current batch.
   */
  std::vector<workload::Deployment> forecast;
  /** Probability weight applied to forecast objective terms. */
  double forecast_confidence = 0.7;

  /**
   * Optional instrumentation sink. Feeds offline.* counters (batches,
   * placements, solver nodes / LP solves / pivots) so placement runs
   * show up in metric snapshots next to the online path.
   */
  obs::Observability* obs = nullptr;

  FlexOfflineConfig() { solver.time_budget_seconds = 10.0; }
};

/**
 * The paper's Flex-Offline policy.
 */
class FlexOfflinePolicy : public PlacementPolicy {
 public:
  explicit FlexOfflinePolicy(FlexOfflineConfig config = {},
                             std::string name = "Flex-Offline");

  /**
   * Short-horizon variant: batches ~33% of room capacity.
   *
   * @p max_nodes, when positive, caps each batch solve's node count in
   * addition to the wall-clock budget. A node cap truncates the search
   * at the same point on every machine, so determinism tests that solve
   * under a budget should pass a finite @p max_nodes with an
   * effectively infinite @p solve_seconds — wall-clock truncation is
   * the one machine-dependent edge the solver has.
   *
   * @p live, when non-null, receives solver progress (wave occupancy,
   * open nodes, warm-basis hits) for the live /metrics plane; strictly
   * observer-only, see solver::LiveSolverStats.
   */
  static FlexOfflinePolicy Short(double solve_seconds = 10.0,
                                 std::int64_t max_nodes = 0,
                                 solver::LiveSolverStats* live = nullptr);
  /** Long-horizon variant: batches ~66% of room capacity. */
  static FlexOfflinePolicy Long(double solve_seconds = 10.0,
                                std::int64_t max_nodes = 0,
                                solver::LiveSolverStats* live = nullptr);
  /** Oracle variant: the entire trace in a single batch. */
  static FlexOfflinePolicy Oracle(double solve_seconds = 10.0,
                                  std::int64_t max_nodes = 0,
                                  solver::LiveSolverStats* live = nullptr);

  /**
   * Short-horizon batching augmented with an uncertain forecast of the
   * remaining demand (paper Section V-A's proposed extension).
   */
  static FlexOfflinePolicy ForecastAware(
      std::vector<workload::Deployment> forecast, double confidence = 0.7,
      double solve_seconds = 10.0, std::int64_t max_nodes = 0,
      solver::LiveSolverStats* live = nullptr);

  std::string Name() const override { return name_; }

  Placement Place(const power::RoomTopology& topology,
                  const std::vector<workload::Deployment>& trace) override;

  const FlexOfflineConfig& config() const { return config_; }

  /**
   * Convergence curve of every batch MILP from the most recent Place()
   * call, in batch order (see solver::SolverTrace::ToCsv).
   */
  const std::vector<solver::SolverTrace>& solve_traces() const {
    return solve_traces_;
  }

 private:
  /**
   * Solves one batch against the current room state; returns the chosen
   * PDU pair per batch deployment (-1 = not placed). Appends the
   * batch's convergence trace to solve_traces_.
   */
  std::vector<int> SolveBatch(
      const power::RoomTopology& topology, const CapacityTracker& tracker,
      const std::vector<workload::Deployment>& batch,
      const std::vector<workload::Deployment>& phantom,
      const std::vector<Watts>& existing_shutdown_rec_per_pair);

  FlexOfflineConfig config_;
  std::string name_;
  std::vector<solver::SolverTrace> solve_traces_;
};

}  // namespace flex::offline

#endif  // FLEX_OFFLINE_FLEX_OFFLINE_HPP_
