#include "flex_offline.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "common/error.hpp"
#include "obs/profiler.hpp"
#include "power/loads.hpp"
#include "solver/model.hpp"

namespace flex::offline {

using power::PduPairId;
using power::RoomTopology;
using power::UpsId;
using solver::Model;
using solver::Relation;
using solver::VarIndex;
using workload::Category;
using workload::Deployment;

FlexOfflinePolicy::FlexOfflinePolicy(FlexOfflineConfig config,
                                     std::string name)
    : config_(std::move(config)), name_(std::move(name))
{
  FLEX_REQUIRE(config_.batch_capacity_fraction > 0.0,
               "batch capacity fraction must be positive");
  FLEX_REQUIRE(config_.imbalance_weight >= 0.0,
               "imbalance weight must be non-negative");
  FLEX_REQUIRE(config_.forecast_confidence >= 0.0 &&
                   config_.forecast_confidence <= 1.0,
               "forecast confidence must be in [0, 1]");
}

FlexOfflinePolicy
FlexOfflinePolicy::Short(double solve_seconds, std::int64_t max_nodes,
                         solver::LiveSolverStats* live)
{
  FlexOfflineConfig config;
  config.batch_capacity_fraction = 0.33;
  config.solver.time_budget_seconds = solve_seconds;
  if (max_nodes > 0)
    config.solver.max_nodes = max_nodes;
  config.solver.live = live;
  return FlexOfflinePolicy(config, "Flex-Offline-Short");
}

FlexOfflinePolicy
FlexOfflinePolicy::Long(double solve_seconds, std::int64_t max_nodes,
                        solver::LiveSolverStats* live)
{
  FlexOfflineConfig config;
  config.batch_capacity_fraction = 0.66;
  config.solver.time_budget_seconds = solve_seconds;
  if (max_nodes > 0)
    config.solver.max_nodes = max_nodes;
  config.solver.live = live;
  return FlexOfflinePolicy(config, "Flex-Offline-Long");
}

FlexOfflinePolicy
FlexOfflinePolicy::Oracle(double solve_seconds, std::int64_t max_nodes,
                          solver::LiveSolverStats* live)
{
  FlexOfflineConfig config;
  // Large enough to swallow any realistic demand multiple in one batch.
  config.batch_capacity_fraction = 1e9;
  config.solver.time_budget_seconds = solve_seconds;
  if (max_nodes > 0)
    config.solver.max_nodes = max_nodes;
  config.solver.live = live;
  return FlexOfflinePolicy(config, "Flex-Offline-Oracle");
}

FlexOfflinePolicy
FlexOfflinePolicy::ForecastAware(std::vector<workload::Deployment> forecast,
                                 double confidence, double solve_seconds,
                                 std::int64_t max_nodes,
                                 solver::LiveSolverStats* live)
{
  FlexOfflineConfig config;
  config.batch_capacity_fraction = 0.33;
  config.solver.time_budget_seconds = solve_seconds;
  if (max_nodes > 0)
    config.solver.max_nodes = max_nodes;
  config.solver.live = live;
  config.forecast = std::move(forecast);
  config.forecast_confidence = confidence;
  return FlexOfflinePolicy(config, "Flex-Offline-Forecast");
}

namespace {

/** Megawatt scaling keeps LP coefficients O(1-10) for numerical health. */
double
Mw(Watts w)
{
  return w.megawatts();
}

/** Power recoverable from @p d by shutdown (software-redundant only). */
Watts
ShutdownRecoverable(const Deployment& d)
{
  return d.category == Category::kSoftwareRedundant ? d.AllocatedPower()
                                                    : Watts(0.0);
}

}  // namespace

namespace {

/**
 * Greedy least-loaded placement of @p batch against the current room
 * state; used both to warm-start the MILP and as the fallback when the
 * solve budget expires without an incumbent.
 */
std::vector<int>
GreedyPlace(const RoomTopology& topology, const CapacityTracker& tracker,
            const std::vector<Deployment>& batch)
{
  std::vector<int> chosen(batch.size(), -1);
  CapacityTracker greedy = tracker;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    PduPairId best = -1;
    for (PduPairId p = 0; p < topology.NumPduPairs(); ++p) {
      if (!greedy.CanPlace(batch[i], p))
        continue;
      if (best < 0 || greedy.AllocatedLoad(p) < greedy.AllocatedLoad(best))
        best = p;
    }
    if (best >= 0) {
      greedy.Place(batch[i], best);
      chosen[i] = best;
    }
  }
  return chosen;
}

}  // namespace

std::vector<int>
FlexOfflinePolicy::SolveBatch(
    const RoomTopology& topology, const CapacityTracker& tracker,
    const std::vector<Deployment>& batch,
    const std::vector<Deployment>& phantom,
    const std::vector<Watts>& existing_shutdown_rec_per_pair)
{
  FLEX_PROFILE_PHASE("offline.solve_batch");
  const int pairs = topology.NumPduPairs();
  Model model;
  model.SetSense(solver::Sense::kMaximize);

  // Certain deployments followed by discounted forecast phantoms; the
  // phantoms shape the solution but are never committed.
  std::vector<Deployment> all = batch;
  all.insert(all.end(), phantom.begin(), phantom.end());

  // Placement indicators, only for (d, p) combinations that are feasible
  // against the already-committed room state.
  struct PlacementVar {
    int batch_index;
    PduPairId pdu_pair;
    VarIndex var;
  };
  std::vector<PlacementVar> vars;
  std::vector<std::vector<std::pair<VarIndex, double>>> per_deployment(
      all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    const double weight =
        i < batch.size() ? 1.0 : config_.forecast_confidence;
    for (PduPairId p = 0; p < pairs; ++p) {
      if (!tracker.CanPlace(all[i], p))
        continue;
      const VarIndex v = model.AddBinary(
          "x_" + std::to_string(i) + "_" + std::to_string(p),
          weight * Mw(all[i].AllocatedPower()));
      vars.push_back({static_cast<int>(i), p, v});
      per_deployment[i].push_back({v, 1.0});
    }
  }

  // Eq. 1: each deployment placed at most once.
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (!per_deployment[i].empty()) {
      model.AddConstraint("place_once_" + std::to_string(i),
                          per_deployment[i], Relation::kLessEqual, 1.0);
    }
  }

  // Eq. 2: normal-operation UPS capacity, net of committed load.
  const std::vector<Watts> existing_normal =
      power::NormalUpsLoads(topology, tracker.AllocatedLoads());
  for (UpsId u = 0; u < topology.NumUpses(); ++u) {
    std::vector<std::pair<VarIndex, double>> terms;
    for (const PlacementVar& pv : vars) {
      const auto [u1, u2] = topology.UpsesOfPduPair(pv.pdu_pair);
      if (u1 == u || u2 == u) {
        terms.push_back({pv.var, 0.5 * Mw(all[static_cast<std::size_t>(
                                                  pv.batch_index)]
                                             .AllocatedPower())});
      }
    }
    if (!terms.empty()) {
      model.AddConstraint(
          "normal_ups_" + std::to_string(u), std::move(terms),
          Relation::kLessEqual,
          Mw(topology.UpsCapacity(u) -
             existing_normal[static_cast<std::size_t>(u)]));
    }
  }

  // Eq. 4: failover safety with corrective actions, for every failure f
  // and surviving UPS u.
  for (UpsId f = 0; f < topology.NumUpses(); ++f) {
    const std::vector<Watts> existing_failover =
        power::FailoverUpsLoads(topology, tracker.CappedLoads(), f);
    for (UpsId u = 0; u < topology.NumUpses(); ++u) {
      if (u == f)
        continue;
      std::vector<std::pair<VarIndex, double>> terms;
      for (const PlacementVar& pv : vars) {
        const auto [u1, u2] = topology.UpsesOfPduPair(pv.pdu_pair);
        if (u1 != u && u2 != u)
          continue;
        const bool pair_hits_failed = (u1 == f || u2 == f);
        const double share = pair_hits_failed ? 1.0 : 0.5;
        const Watts cap_pow =
            all[static_cast<std::size_t>(pv.batch_index)].CappedPower();
        if (cap_pow > Watts(0.0))
          terms.push_back({pv.var, share * Mw(cap_pow)});
      }
      if (!terms.empty()) {
        model.AddConstraint(
            "failover_" + std::to_string(f) + "_" + std::to_string(u),
            std::move(terms), Relation::kLessEqual,
            Mw(topology.UpsCapacity(u) -
               existing_failover[static_cast<std::size_t>(u)]));
      }
    }
  }

  // Space: rack slots per PDU pair (cooling is re-checked at commit),
  // and the 2N PDU rating on the pair's total allocation.
  for (PduPairId p = 0; p < pairs; ++p) {
    std::vector<std::pair<VarIndex, double>> slot_terms;
    std::vector<std::pair<VarIndex, double>> power_terms;
    for (const PlacementVar& pv : vars) {
      if (pv.pdu_pair == p) {
        const Deployment& d = all[static_cast<std::size_t>(pv.batch_index)];
        slot_terms.push_back({pv.var, static_cast<double>(d.num_racks)});
        power_terms.push_back({pv.var, Mw(d.AllocatedPower())});
      }
    }
    if (!slot_terms.empty()) {
      model.AddConstraint("space_" + std::to_string(p),
                          std::move(slot_terms), Relation::kLessEqual,
                          static_cast<double>(tracker.FreeSlots(p)));
      model.AddConstraint(
          "pdu_" + std::to_string(p), std::move(power_terms),
          Relation::kLessEqual,
          Mw(topology.PduPairAllocationLimit() - tracker.AllocatedLoad(p)));
    }
  }

  // Soft objective: the throttling-imbalance metric is the spread of
  // post-shutdown failover loads across (failure, survivor) UPS pairs,
  // which is linear in the placement variables. Penalize that spread
  // directly via max/min bounding variables.
  if (config_.imbalance_weight > 0.0) {
    const double w = config_.imbalance_weight;
    const double big = Mw(topology.TotalProvisionedPower());
    const VarIndex fmax = model.AddContinuous("failover_max", 0.0, big, -w);
    const VarIndex fmin = model.AddContinuous("failover_min", 0.0, big, w);

    // Per-pair committed load once software-redundant racks shut down.
    power::PduPairLoads existing_after_shutdown = tracker.AllocatedLoads();
    for (PduPairId p = 0; p < pairs; ++p) {
      existing_after_shutdown[static_cast<std::size_t>(p)] -=
          existing_shutdown_rec_per_pair[static_cast<std::size_t>(p)];
    }
    for (UpsId f = 0; f < topology.NumUpses(); ++f) {
      const std::vector<Watts> existing_loads =
          power::FailoverUpsLoads(topology, existing_after_shutdown, f);
      for (UpsId u = 0; u < topology.NumUpses(); ++u) {
        if (u == f)
          continue;
        std::vector<std::pair<VarIndex, double>> terms;
        for (const PlacementVar& pv : vars) {
          const auto [u1, u2] = topology.UpsesOfPduPair(pv.pdu_pair);
          if (u1 != u && u2 != u)
            continue;
          const Deployment& d =
              all[static_cast<std::size_t>(pv.batch_index)];
          if (d.category == Category::kSoftwareRedundant)
            continue;  // shut down before throttling is assessed
          const bool pair_hits_failed = (u1 == f || u2 == f);
          const double share = pair_hits_failed ? 1.0 : 0.5;
          terms.push_back({pv.var, share * Mw(d.AllocatedPower())});
        }
        const double existing =
            Mw(existing_loads[static_cast<std::size_t>(u)]);
        // existing + sum(terms) <= fmax  and  >= fmin.
        std::vector<std::pair<VarIndex, double>> upper = terms;
        upper.push_back({fmax, -1.0});
        model.AddConstraint(
            "spread_max_" + std::to_string(f) + "_" + std::to_string(u),
            std::move(upper), Relation::kLessEqual, -existing);
        std::vector<std::pair<VarIndex, double>> lower = std::move(terms);
        lower.push_back({fmin, -1.0});
        model.AddConstraint(
            "spread_min_" + std::to_string(f) + "_" + std::to_string(u),
            std::move(lower), Relation::kGreaterEqual, -existing);
      }
    }
  }

  // Warm-start the solver from a greedy placement so that even a budget
  // too small to close the tree never does worse than the greedy
  // heuristic (the large single-batch Oracle solves need this).
  const std::vector<int> greedy_chosen = GreedyPlace(topology, tracker, batch);
  solver::BranchAndBoundSolver::Options solver_options = config_.solver;
  {
    std::vector<double> warm(
        static_cast<std::size_t>(model.NumVariables()), 0.0);
    for (const PlacementVar& pv : vars) {
      if (static_cast<std::size_t>(pv.batch_index) < batch.size() &&
          greedy_chosen[static_cast<std::size_t>(pv.batch_index)] ==
              pv.pdu_pair)
        warm[static_cast<std::size_t>(pv.var)] = 1.0;
    }
    if (config_.imbalance_weight > 0.0) {
      // Tight values for the max/min auxiliaries under the greedy plan.
      power::PduPairLoads after_shutdown = tracker.AllocatedLoads();
      for (PduPairId p = 0; p < pairs; ++p) {
        after_shutdown[static_cast<std::size_t>(p)] -=
            existing_shutdown_rec_per_pair[static_cast<std::size_t>(p)];
      }
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (greedy_chosen[i] < 0 ||
            batch[i].category == Category::kSoftwareRedundant)
          continue;
        after_shutdown[static_cast<std::size_t>(greedy_chosen[i])] +=
            batch[i].AllocatedPower();
      }
      double load_max = 0.0;
      double load_min = 1e18;
      for (UpsId f = 0; f < topology.NumUpses(); ++f) {
        const std::vector<Watts> loads =
            power::FailoverUpsLoads(topology, after_shutdown, f);
        for (UpsId u = 0; u < topology.NumUpses(); ++u) {
          if (u == f)
            continue;
          load_max = std::max(load_max, Mw(loads[static_cast<std::size_t>(u)]));
          load_min = std::min(load_min, Mw(loads[static_cast<std::size_t>(u)]));
        }
      }
      // fmax/fmin are the last two variables added to the model.
      warm[static_cast<std::size_t>(model.NumVariables()) - 2] = load_max;
      warm[static_cast<std::size_t>(model.NumVariables()) - 1] = load_min;
    }
    solver_options.warm_start = std::move(warm);
  }

  // Each batch solve keeps its own convergence curve; callers export
  // them (e.g. bench_solver_perf) via solve_traces().
  solve_traces_.emplace_back();
  solver_options.trace = &solve_traces_.back();

  const solver::MipResult result =
      solver::BranchAndBoundSolver(solver_options).Solve(model);

  if (config_.obs != nullptr) {
    obs::MetricsRegistry& metrics = config_.obs->metrics();
    metrics.counter("offline.solver.nodes")
        .Increment(static_cast<double>(result.nodes_explored));
    metrics.counter("offline.solver.lp_solves")
        .Increment(static_cast<double>(result.lp_solves));
    metrics.counter("offline.solver.pivots")
        .Increment(static_cast<double>(result.simplex_pivots));
    metrics.counter("offline.solver.basis_attempts")
        .Increment(static_cast<double>(result.basis_reuse_attempts));
    metrics.counter("offline.solver.basis_hits")
        .Increment(static_cast<double>(result.basis_reuse_hits));
    metrics.counter("offline.solver.steals")
        .Increment(static_cast<double>(result.steal_count));
    metrics.counter("offline.solver.refactors")
        .Increment(static_cast<double>(result.simplex_refactors));
    metrics.counter("offline.solver.eta_updates")
        .Increment(static_cast<double>(result.eta_updates));
    metrics.counter("offline.solver.dual_pivots")
        .Increment(static_cast<double>(result.dual_pivots));
    metrics.counter("offline.solver.warm_dual_restarts")
        .Increment(static_cast<double>(result.warm_dual_restarts));
    metrics.counter("offline.solver.propagation_prunes")
        .Increment(static_cast<double>(result.propagation_prunes));
    metrics.counter("offline.solver.propagated_bounds")
        .Increment(static_cast<double>(result.propagated_bounds));
    metrics.counter("offline.solver.presolve_rows_removed")
        .Increment(static_cast<double>(result.presolve_rows_removed));
    metrics.counter("offline.solver.presolve_cols_removed")
        .Increment(static_cast<double>(result.presolve_cols_removed));
    metrics.gauge("offline.solver.threads")
        .Set(static_cast<double>(result.threads_used));
    metrics.gauge("offline.solver.last_gap").Set(result.gap);
  }

  if (!result.HasSolution())
    return greedy_chosen;  // budget gone and warm start rejected: greedy
  std::vector<int> chosen(batch.size(), -1);
  for (const PlacementVar& pv : vars) {
    if (static_cast<std::size_t>(pv.batch_index) < batch.size() &&
        result.x[static_cast<std::size_t>(pv.var)] > 0.5)
      chosen[static_cast<std::size_t>(pv.batch_index)] = pv.pdu_pair;
  }
  return chosen;
}

Placement
FlexOfflinePolicy::Place(const RoomTopology& topology,
                         const std::vector<Deployment>& trace)
{
  FLEX_PROFILE_PHASE("offline.place");
  Placement placement;
  placement.deployments = trace;
  placement.assignment.assign(trace.size(), std::nullopt);
  solve_traces_.clear();

  CapacityTracker tracker(topology);
  std::vector<Watts> shutdown_rec(
      static_cast<std::size_t>(topology.NumPduPairs()), Watts(0.0));

  const Watts batch_power =
      topology.TotalProvisionedPower() *
      std::min(config_.batch_capacity_fraction, 1e12);

  std::size_t next = 0;
  while (next < trace.size()) {
    // Accumulate the next batch by cumulative allocated power.
    std::vector<Deployment> batch;
    std::vector<std::size_t> batch_trace_index;
    Watts batch_total(0.0);
    while (next < trace.size() &&
           (batch.empty() || batch_total < batch_power)) {
      batch.push_back(trace[next]);
      batch_trace_index.push_back(next);
      batch_total += trace[next].AllocatedPower();
      ++next;
    }

    // Forecast entries for demand not yet seen (matched by id), capped
    // at roughly one extra batch of lookahead so the ILP stays solvable
    // within the per-batch budget.
    std::vector<Deployment> phantom;
    if (!config_.forecast.empty()) {
      std::set<workload::DeploymentId> seen;
      for (std::size_t i = 0; i < next; ++i)
        seen.insert(trace[i].id);
      Watts phantom_total(0.0);
      for (const Deployment& f : config_.forecast) {
        if (seen.count(f.id))
          continue;
        if (phantom_total >= batch_power)
          break;
        phantom.push_back(f);
        phantom_total += f.AllocatedPower();
      }
    }

    const std::vector<int> chosen =
        SolveBatch(topology, tracker, batch, phantom, shutdown_rec);

    int placed_in_batch = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (chosen[i] < 0)
        continue;
      const PduPairId p = chosen[i];
      // The MILP approximates cooling with slot counts; re-validate and
      // skip on the rare mismatch rather than violate room constraints.
      if (!tracker.CanPlace(batch[i], p))
        continue;
      tracker.Place(batch[i], p);
      placement.assignment[batch_trace_index[i]] = p;
      shutdown_rec[static_cast<std::size_t>(p)] +=
          ShutdownRecoverable(batch[i]);
      ++placed_in_batch;
    }
    if (config_.obs != nullptr) {
      obs::MetricsRegistry& metrics = config_.obs->metrics();
      metrics.counter("offline.batches").Increment();
      metrics.counter("offline.deployments_placed")
          .Increment(static_cast<double>(placed_in_batch));
    }
  }
  return placement;
}

}  // namespace flex::offline
