#include "placement.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace flex::offline {

using power::PduPairId;
using power::PduPairLoads;
using power::RoomTopology;
using workload::Category;
using workload::Deployment;

Watts
CappedPowerUnder(CorrectiveModel model, const Deployment& d)
{
  switch (model) {
    case CorrectiveModel::kFlex:
      return d.CappedPower();
    case CorrectiveModel::kThrottleOnly:
      // Cap-able racks can be throttled; everything else — including
      // software-redundant racks, which this model cannot shut down —
      // stays at full power during failover.
      return d.category == Category::kNonRedundantCapable
                 ? d.CappedPower()
                 : d.AllocatedPower();
    case CorrectiveModel::kNone:
      return d.AllocatedPower();
  }
  return d.AllocatedPower();
}

int
Placement::NumPlaced() const
{
  int placed = 0;
  for (const auto& a : assignment)
    placed += a.has_value() ? 1 : 0;
  return placed;
}

Watts
Placement::PlacedPower() const
{
  FLEX_CHECK(assignment.size() == deployments.size());
  Watts total(0.0);
  for (std::size_t i = 0; i < deployments.size(); ++i) {
    if (assignment[i].has_value())
      total += deployments[i].AllocatedPower();
  }
  return total;
}

PduPairLoads
Placement::AllocatedPduLoads(const RoomTopology& t) const
{
  FLEX_CHECK(assignment.size() == deployments.size());
  PduPairLoads loads(static_cast<std::size_t>(t.NumPduPairs()), Watts(0.0));
  for (std::size_t i = 0; i < deployments.size(); ++i) {
    if (assignment[i].has_value())
      loads[static_cast<std::size_t>(*assignment[i])] +=
          deployments[i].AllocatedPower();
  }
  return loads;
}

PduPairLoads
Placement::CappedPduLoads(const RoomTopology& t) const
{
  FLEX_CHECK(assignment.size() == deployments.size());
  PduPairLoads loads(static_cast<std::size_t>(t.NumPduPairs()), Watts(0.0));
  for (std::size_t i = 0; i < deployments.size(); ++i) {
    if (assignment[i].has_value())
      loads[static_cast<std::size_t>(*assignment[i])] +=
          deployments[i].CappedPower();
  }
  return loads;
}

PduPairLoads
Placement::CategoryPduLoads(const RoomTopology& t, Category category) const
{
  FLEX_CHECK(assignment.size() == deployments.size());
  PduPairLoads loads(static_cast<std::size_t>(t.NumPduPairs()), Watts(0.0));
  for (std::size_t i = 0; i < deployments.size(); ++i) {
    if (assignment[i].has_value() && deployments[i].category == category)
      loads[static_cast<std::size_t>(*assignment[i])] +=
          deployments[i].AllocatedPower();
  }
  return loads;
}

std::vector<Rack>
BuildRackLayout(const RoomTopology& topology, const Placement& placement)
{
  FLEX_CHECK(placement.assignment.size() == placement.deployments.size());
  std::vector<int> row_used(static_cast<std::size_t>(topology.NumRows()), 0);
  std::vector<double> row_cfm(static_cast<std::size_t>(topology.NumRows()),
                              0.0);
  std::vector<Rack> racks;
  for (std::size_t i = 0; i < placement.deployments.size(); ++i) {
    if (!placement.assignment[i].has_value())
      continue;
    const Deployment& d = placement.deployments[i];
    const PduPairId p = *placement.assignment[i];
    int remaining = d.num_racks;
    for (const power::RowId row : topology.RowsOfPduPair(p)) {
      while (remaining > 0 &&
             row_used[static_cast<std::size_t>(row)] <
                 topology.RacksPerRow() &&
             row_cfm[static_cast<std::size_t>(row)] + d.CfmPerRack() <=
                 topology.RowCoolingCfm() + 1e-9) {
        Rack rack;
        rack.id = static_cast<int>(racks.size());
        rack.deployment = d.id;
        rack.pdu_pair = p;
        rack.row = row;
        rack.workload = d.workload;
        rack.category = d.category;
        rack.allocated = d.power_per_rack;
        rack.capped = d.CappedPowerPerRack();
        racks.push_back(std::move(rack));
        ++row_used[static_cast<std::size_t>(row)];
        row_cfm[static_cast<std::size_t>(row)] += d.CfmPerRack();
        --remaining;
      }
      if (remaining == 0)
        break;
    }
    FLEX_CHECK_MSG(remaining == 0,
                   "placement assigned a deployment that does not fit its "
                   "PDU pair's rows");
  }
  return racks;
}

CapacityTracker::CapacityTracker(const RoomTopology& topology,
                                 CorrectiveModel model)
    : topology_(topology),
      model_(model),
      used_slots_(static_cast<std::size_t>(topology.NumPduPairs()), 0),
      row_used_(static_cast<std::size_t>(topology.NumRows()), 0),
      row_cfm_(static_cast<std::size_t>(topology.NumRows()), 0.0),
      allocated_(static_cast<std::size_t>(topology.NumPduPairs()), Watts(0.0)),
      capped_(static_cast<std::size_t>(topology.NumPduPairs()), Watts(0.0))
{
}

int
CapacityTracker::RacksThatFit(const Deployment& d, PduPairId p) const
{
  int fits = 0;
  for (const power::RowId row : topology_.RowsOfPduPair(p)) {
    const int free_slots =
        topology_.RacksPerRow() - row_used_[static_cast<std::size_t>(row)];
    const double free_cfm =
        topology_.RowCoolingCfm() - row_cfm_[static_cast<std::size_t>(row)];
    const int cooling_limit =
        d.CfmPerRack() > 0.0
            ? static_cast<int>((free_cfm + 1e-9) / d.CfmPerRack())
            : free_slots;
    fits += std::max(0, std::min(free_slots, cooling_limit));
    if (fits >= d.num_racks)
      break;
  }
  return fits;
}

bool
CapacityTracker::CanPlace(const Deployment& d, PduPairId p) const
{
  if (p < 0 || p >= topology_.NumPduPairs())
    return false;
  // Space and cooling: mirror BuildRackLayout's greedy per-row fill.
  if (RacksThatFit(d, p) < d.num_racks)
    return false;

  // 2N PDU redundancy: the pair's allocation must fit one PDU alone.
  if (allocated_[static_cast<std::size_t>(p)] + d.AllocatedPower() >
      topology_.PduPairAllocationLimit() + Watts(1e-6))
    return false;

  // Eq. 2: normal operation loads within every UPS capacity.
  PduPairLoads allocated = allocated_;
  allocated[static_cast<std::size_t>(p)] += d.AllocatedPower();
  if (!power::ValidateNormalOperation(topology_, allocated))
    return false;

  // Eq. 4: failover-safe after the corrective actions this runtime
  // model supports.
  PduPairLoads capped = capped_;
  capped[static_cast<std::size_t>(p)] += CappedPowerUnder(model_, d);
  return power::ValidateFailoverSafety(topology_, capped).safe;
}

void
CapacityTracker::Place(const Deployment& d, PduPairId p)
{
  FLEX_REQUIRE(CanPlace(d, p), "placement violates room constraints");
  // Commit racks to rows with the same greedy fill BuildRackLayout uses.
  int remaining = d.num_racks;
  for (const power::RowId row : topology_.RowsOfPduPair(p)) {
    while (remaining > 0 &&
           row_used_[static_cast<std::size_t>(row)] <
               topology_.RacksPerRow() &&
           row_cfm_[static_cast<std::size_t>(row)] + d.CfmPerRack() <=
               topology_.RowCoolingCfm() + 1e-9) {
      ++row_used_[static_cast<std::size_t>(row)];
      row_cfm_[static_cast<std::size_t>(row)] += d.CfmPerRack();
      --remaining;
    }
    if (remaining == 0)
      break;
  }
  FLEX_CHECK_MSG(remaining == 0, "CanPlace/Place row-fill mismatch");
  used_slots_[static_cast<std::size_t>(p)] += d.num_racks;
  allocated_[static_cast<std::size_t>(p)] += d.AllocatedPower();
  capped_[static_cast<std::size_t>(p)] += CappedPowerUnder(model_, d);
}

std::vector<PduPairId>
CapacityTracker::FeasiblePairs(const Deployment& d) const
{
  std::vector<PduPairId> feasible;
  for (PduPairId p = 0; p < topology_.NumPduPairs(); ++p) {
    if (CanPlace(d, p))
      feasible.push_back(p);
  }
  return feasible;
}

int
CapacityTracker::FreeSlots(PduPairId p) const
{
  FLEX_REQUIRE(p >= 0 && p < topology_.NumPduPairs(), "bad PDU pair id");
  return topology_.RackSlotsPerPduPair() -
         used_slots_[static_cast<std::size_t>(p)];
}

Watts
CapacityTracker::AllocatedLoad(PduPairId p) const
{
  FLEX_REQUIRE(p >= 0 && p < topology_.NumPduPairs(), "bad PDU pair id");
  return allocated_[static_cast<std::size_t>(p)];
}

Watts
CapacityTracker::CappedLoad(PduPairId p) const
{
  FLEX_REQUIRE(p >= 0 && p < topology_.NumPduPairs(), "bad PDU pair id");
  return capped_[static_cast<std::size_t>(p)];
}

}  // namespace flex::offline
