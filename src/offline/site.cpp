#include "site.hpp"

#include <utility>

#include "common/error.hpp"

namespace flex::offline {

Watts
SitePlacement::PlacedPower() const
{
  Watts total(0.0);
  for (const Placement& placement : rooms)
    total += placement.PlacedPower();
  return total;
}

double
SitePlacement::PlacedFraction(
    const std::vector<workload::Deployment>& trace) const
{
  const Watts requested = workload::TotalAllocatedPower(trace);
  if (requested <= Watts(0.0))
    return 1.0;
  return PlacedPower() / requested;
}

SitePlacer::SitePlacer(std::vector<const power::RoomTopology*> rooms,
                       PolicyFactory factory)
    : rooms_(std::move(rooms)), factory_(std::move(factory))
{
  FLEX_REQUIRE(!rooms_.empty(), "a site needs at least one room");
  for (const power::RoomTopology* room : rooms_)
    FLEX_REQUIRE(room != nullptr, "null room");
  FLEX_REQUIRE(static_cast<bool>(factory_), "null policy factory");
}

SitePlacement
SitePlacer::Place(const std::vector<workload::Deployment>& trace) const
{
  SitePlacement site;
  std::vector<workload::Deployment> remaining = trace;
  for (const power::RoomTopology* room : rooms_) {
    const std::unique_ptr<PlacementPolicy> policy = factory_();
    FLEX_CHECK_MSG(policy != nullptr, "policy factory returned null");
    Placement placement = policy->Place(*room, remaining);
    // Collect this room's rejections for the next room, preserving ids.
    std::vector<workload::Deployment> rejected;
    for (std::size_t i = 0; i < placement.deployments.size(); ++i) {
      if (!placement.assignment[i].has_value())
        rejected.push_back(placement.deployments[i]);
    }
    site.rooms.push_back(std::move(placement));
    remaining = std::move(rejected);
    if (remaining.empty())
      break;
  }
  site.unplaced = std::move(remaining);
  // Rooms beyond the last one used still get (empty) placements so the
  // indices line up with the room list.
  while (site.rooms.size() < rooms_.size())
    site.rooms.push_back(Placement{});
  return site;
}

}  // namespace flex::offline
