/**
 * @file
 * Baseline workload placement policies.
 *
 * The paper evaluates Flex-Offline against Random and Balanced
 * Round-Robin (Section V-A); First-Fit is included for the ablation the
 * paper discusses (it concentrates load, the opposite of what Flex
 * needs). Every policy places through CapacityTracker, so all results
 * are safe; they differ only in stranded power and balance.
 */
#ifndef FLEX_OFFLINE_POLICIES_HPP_
#define FLEX_OFFLINE_POLICIES_HPP_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "offline/placement.hpp"

namespace flex::common {
class ThreadPool;
}  // namespace flex::common

namespace flex::offline {

/** Interface shared by all placement policies. */
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /** Human-readable policy name for reports. */
  virtual std::string Name() const = 0;

  /**
   * Places @p trace into a room described by @p topology. Deployments
   * that fit nowhere are left unassigned (routed to another room).
   */
  virtual Placement Place(const power::RoomTopology& topology,
                          const std::vector<workload::Deployment>& trace) = 0;
};

/**
 * Places each deployment on a uniformly random feasible PDU pair, one
 * deployment at a time in trace order.
 */
class RandomPolicy : public PlacementPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : seed_(seed) {}

  std::string Name() const override { return "Random"; }
  Placement Place(const power::RoomTopology& topology,
                  const std::vector<workload::Deployment>& trace) override;

 private:
  std::uint64_t seed_;
};

/**
 * Balanced Round-Robin: keeps an independent round-robin cursor over PDU
 * pairs for each workload category, so the demand from each category is
 * spread roughly evenly under every UPS.
 */
class BalancedRoundRobinPolicy : public PlacementPolicy {
 public:
  BalancedRoundRobinPolicy() = default;

  /**
   * Variant with a different corrective-action model, used to compare
   * how much reserved power different runtime systems can unlock with
   * the same placement heuristic.
   */
  explicit BalancedRoundRobinPolicy(CorrectiveModel model, std::string name)
      : model_(model), name_(std::move(name))
  {
  }

  std::string Name() const override { return name_; }
  Placement Place(const power::RoomTopology& topology,
                  const std::vector<workload::Deployment>& trace) override;

 private:
  CorrectiveModel model_ = CorrectiveModel::kFlex;
  std::string name_ = "Balanced Round-Robin";
};

/**
 * CapMaestro-like baseline (Li et al., HPCA'19): exploits the power
 * redundancy via priority-aware *throttling only* — no workload
 * availability awareness, so software-redundant racks cannot be shut
 * down during failover and placement can use only part of the reserve
 * (the comparison in the paper's Sections I and VII).
 */
BalancedRoundRobinPolicy MakeCapMaestroLikePolicy();

/** Conventional room: no corrective actions; allocation stops at the
 * failover budget, stranding the entire reserve. */
BalancedRoundRobinPolicy MakeConventionalPolicy();

/**
 * First-Fit: lowest-indexed feasible PDU pair. Included as the common
 * manual practice the paper rejects because it concentrates rather than
 * spreads load.
 */
class FirstFitPolicy : public PlacementPolicy {
 public:
  std::string Name() const override { return "First-Fit"; }
  Placement Place(const power::RoomTopology& topology,
                  const std::vector<workload::Deployment>& trace) override;
};

/**
 * Produces a fresh policy instance per placement run. Invoked
 * concurrently by PlaceVariants, so it must be safe to call from
 * multiple threads (constructing a policy from captured config is; any
 * shared mutable sink — e.g. one obs::Observability wired into every
 * instance — is not).
 */
using PolicyFactory = std::function<std::unique_ptr<PlacementPolicy>()>;

/**
 * Places every trace variant with its own fresh policy instance, in
 * input order. When @p pool is non-null and there is more than one
 * variant, the runs execute concurrently on the pool; results are
 * identical either way because each run owns all of its mutable state
 * (policy instance + CapacityTracker). This is the batch fan-out used
 * by the placement study benches: shuffled trace variants are
 * independent solves, so they saturate the pool while each inner MILP
 * additionally fans its node waves onto the same (nesting-safe) pool.
 */
std::vector<Placement> PlaceVariants(
    const power::RoomTopology& topology, const PolicyFactory& factory,
    const std::vector<std::vector<workload::Deployment>>& variants,
    common::ThreadPool* pool = nullptr);

}  // namespace flex::offline

#endif  // FLEX_OFFLINE_POLICIES_HPP_
