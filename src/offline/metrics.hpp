/**
 * @file
 * Placement quality metrics from the paper's Section V-A.
 */
#ifndef FLEX_OFFLINE_METRICS_HPP_
#define FLEX_OFFLINE_METRICS_HPP_

#include "offline/placement.hpp"
#include "power/topology.hpp"

namespace flex::offline {

/**
 * Stranded power as a fraction of total provisioned power (Eq. 5
 * normalized): capacity that cannot be used because of fragmentation or
 * lack of workload diversity. Lower is better.
 */
double StrandedPowerFraction(const power::RoomTopology& topology,
                             const Placement& placement);

/**
 * Throttling imbalance (Section V-A): for every UPS maintenance event f,
 * the worst-case power each surviving UPS u must recover through
 * throttling after shutting down all software-redundant racks, as a
 * fraction r_u^f of u's provisioned power. The imbalance is
 * max(r) - min(r) over all (f, u); 0 means perfectly balanced impact.
 */
double ThrottlingImbalance(const power::RoomTopology& topology,
                           const Placement& placement);

/** Fraction of requested power that was placed (the rest is routed on). */
double PlacedPowerFraction(const Placement& placement);

/** Bundle of the per-trace metrics the benches report. */
struct PlacementMetrics {
  double stranded_fraction = 0.0;
  double throttling_imbalance = 0.0;
  double placed_fraction = 0.0;
};

PlacementMetrics EvaluatePlacement(const power::RoomTopology& topology,
                                   const Placement& placement);

}  // namespace flex::offline

#endif  // FLEX_OFFLINE_METRICS_HPP_
