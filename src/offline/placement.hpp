/**
 * @file
 * Placement data model and feasibility tracking.
 *
 * A Placement records, for each deployment in a trace, the PDU pair it
 * was assigned to (or that it was rejected and routed to another room).
 * The CapacityTracker enforces the paper's placement constraints: space,
 * cooling, normal-operation UPS limits (Eq. 2) and failover safety with
 * corrective actions (Eq. 4) — every policy, naive or ILP, places through
 * it, so no policy can produce an unsafe room.
 */
#ifndef FLEX_OFFLINE_PLACEMENT_HPP_
#define FLEX_OFFLINE_PLACEMENT_HPP_

#include <optional>
#include <string>
#include <vector>

#include "power/loads.hpp"
#include "power/topology.hpp"
#include "workload/deployment.hpp"

namespace flex::offline {

/**
 * What corrective actions the runtime system can take during failover;
 * determines the post-corrective power (CapPow) used in the Eq. 4
 * safety constraint and therefore how much reserved power placement can
 * use.
 */
enum class CorrectiveModel {
  /** Flex: shut down software-redundant racks, cap cap-able ones. */
  kFlex,
  /**
   * CapMaestro-style (Li et al., HPCA'19): priority-aware throttling
   * only — no availability awareness, so software-redundant racks
   * cannot be shut down and count at full power during failover. This
   * limits how much of the reserve is usable (paper Sections I/VII).
   */
  kThrottleOnly,
  /** Conventional room: no corrective actions at all. */
  kNone,
};

/** CapPow_d under the given corrective model (Eq. 3 generalized). */
Watts CappedPowerUnder(CorrectiveModel model, const workload::Deployment& d);

/** Result of placing one trace into one room. */
struct Placement {
  /** The deployments that were requested, in trace order. */
  std::vector<workload::Deployment> deployments;
  /** PDU pair per deployment; nullopt = rejected (routed elsewhere). */
  std::vector<std::optional<power::PduPairId>> assignment;

  /** Count of placed deployments. */
  int NumPlaced() const;

  /** Total allocated power of placed deployments. */
  Watts PlacedPower() const;

  /** Allocated power per PDU pair (Pow_d aggregated). */
  power::PduPairLoads AllocatedPduLoads(const power::RoomTopology& t) const;

  /** Post-corrective-action power per PDU pair (CapPow_d aggregated). */
  power::PduPairLoads CappedPduLoads(const power::RoomTopology& t) const;

  /**
   * Per-PDU-pair power for one category only, using allocated (not
   * capped) power; used by the throttling-imbalance metric.
   */
  power::PduPairLoads CategoryPduLoads(const power::RoomTopology& t,
                                       workload::Category category) const;
};

/** One physical rack instantiated from a placed deployment. */
struct Rack {
  int id = -1;
  workload::DeploymentId deployment = -1;
  power::PduPairId pdu_pair = -1;
  power::RowId row = -1;
  std::string workload;
  workload::Category category = workload::Category::kNonRedundantNonCapable;
  Watts allocated;
  /** Power after the worst-case corrective action for this category. */
  Watts capped;
};

/**
 * Expands a placement into per-rack records, assigning racks to rows
 * under each deployment's PDU pair (greedy fill in row order).
 */
std::vector<Rack> BuildRackLayout(const power::RoomTopology& topology,
                                  const Placement& placement);

/**
 * Incremental feasibility tracker used by all placement policies.
 */
class CapacityTracker {
 public:
  explicit CapacityTracker(const power::RoomTopology& topology,
                           CorrectiveModel model = CorrectiveModel::kFlex);

  /**
   * True when @p d can be placed on PDU pair @p p without violating
   * space, cooling, Eq. 2 (normal) or Eq. 4 (failover) constraints.
   */
  bool CanPlace(const workload::Deployment& d, power::PduPairId p) const;

  /** Commits a placement; requires CanPlace(d, p). */
  void Place(const workload::Deployment& d, power::PduPairId p);

  /** All PDU pairs where @p d currently fits. */
  std::vector<power::PduPairId> FeasiblePairs(
      const workload::Deployment& d) const;

  /** Remaining rack slots under PDU pair @p p. */
  int FreeSlots(power::PduPairId p) const;

  /** Allocated power committed under PDU pair @p p so far. */
  Watts AllocatedLoad(power::PduPairId p) const;

  /** Capped (post-corrective-action) power committed under @p p so far. */
  Watts CappedLoad(power::PduPairId p) const;

  /** Full per-PDU-pair allocated load vector. */
  const power::PduPairLoads& AllocatedLoads() const { return allocated_; }

  /** Full per-PDU-pair capped load vector. */
  const power::PduPairLoads& CappedLoads() const { return capped_; }

  const power::RoomTopology& topology() const { return topology_; }

 private:
  /**
   * Number of @p d's racks that fit under pair @p p with the current
   * per-row slot and cooling fill (greedy fill, mirroring
   * BuildRackLayout).
   */
  int RacksThatFit(const workload::Deployment& d, power::PduPairId p) const;

  const power::RoomTopology& topology_;
  CorrectiveModel model_;
  std::vector<int> used_slots_;          // per PDU pair
  std::vector<int> row_used_;            // per row
  std::vector<double> row_cfm_;          // per row
  power::PduPairLoads allocated_;        // per PDU pair
  power::PduPairLoads capped_;           // per PDU pair
};

}  // namespace flex::offline

#endif  // FLEX_OFFLINE_PLACEMENT_HPP_
