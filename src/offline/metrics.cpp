#include "metrics.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "power/loads.hpp"
#include "workload/deployment.hpp"

namespace flex::offline {

using power::PduPairLoads;
using power::RoomTopology;
using power::UpsId;

double
StrandedPowerFraction(const RoomTopology& topology, const Placement& placement)
{
  const Watts stranded =
      power::StrandedPower(topology, placement.AllocatedPduLoads(topology));
  return stranded / topology.TotalProvisionedPower();
}

double
ThrottlingImbalance(const RoomTopology& topology, const Placement& placement)
{
  // Worst case = 100% utilization: every rack draws its full allocation.
  const PduPairLoads allocated = placement.AllocatedPduLoads(topology);
  const PduPairLoads software_redundant = placement.CategoryPduLoads(
      topology, workload::Category::kSoftwareRedundant);

  // Load per PDU pair once all software-redundant racks are shut down.
  PduPairLoads after_shutdown(allocated.size(), Watts(0.0));
  for (std::size_t p = 0; p < allocated.size(); ++p)
    after_shutdown[p] = allocated[p] - software_redundant[p];

  double r_max = 0.0;
  double r_min = 1.0e18;
  bool any = false;
  for (UpsId f = 0; f < topology.NumUpses(); ++f) {
    const std::vector<Watts> loads =
        power::FailoverUpsLoads(topology, after_shutdown, f);
    for (UpsId u = 0; u < topology.NumUpses(); ++u) {
      if (u == f)
        continue;
      // Power still above capacity must be recovered via throttling.
      const Watts overload = std::max(
          Watts(0.0), loads[static_cast<std::size_t>(u)] -
                          topology.UpsCapacity(u));
      const double r = overload / topology.UpsCapacity(u);
      r_max = std::max(r_max, r);
      r_min = std::min(r_min, r);
      any = true;
    }
  }
  FLEX_CHECK(any);
  return r_max - r_min;
}

double
PlacedPowerFraction(const Placement& placement)
{
  const Watts requested = workload::TotalAllocatedPower(placement.deployments);
  if (requested <= Watts(0.0))
    return 1.0;
  return placement.PlacedPower() / requested;
}

PlacementMetrics
EvaluatePlacement(const RoomTopology& topology, const Placement& placement)
{
  PlacementMetrics metrics;
  metrics.stranded_fraction = StrandedPowerFraction(topology, placement);
  metrics.throttling_imbalance = ThrottlingImbalance(topology, placement);
  metrics.placed_fraction = PlacedPowerFraction(placement);
  return metrics;
}

}  // namespace flex::offline
