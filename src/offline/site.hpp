/**
 * @file
 * Multi-room site placement.
 *
 * Paper Section V-A: demand exceeding one room's capacity is routed to
 * other rooms ("The undeployable requests can be routed to other rooms
 * for placement"), and a site comprises multiple datacenters/rooms with
 * isolated power hierarchies (Section II-A). The SitePlacer runs a
 * placement policy room by room, forwarding each room's rejections to
 * the next.
 */
#ifndef FLEX_OFFLINE_SITE_HPP_
#define FLEX_OFFLINE_SITE_HPP_

#include <functional>
#include <memory>
#include <vector>

#include "offline/policies.hpp"
#include "power/topology.hpp"

namespace flex::offline {

/** The outcome of placing one trace across a site's rooms. */
struct SitePlacement {
  /** Per-room placements (indices align with the room list). */
  std::vector<Placement> rooms;
  /** Deployments no room could take (overflow demand). */
  std::vector<workload::Deployment> unplaced;

  /** Total power placed across all rooms. */
  Watts PlacedPower() const;
  /** Fraction of the total requested power that found a home. */
  double PlacedFraction(const std::vector<workload::Deployment>& trace) const;
};

/**
 * Routes a demand trace across multiple rooms.
 */
class SitePlacer {
 public:
  /** A factory producing a fresh policy instance per room. */
  using PolicyFactory = std::function<std::unique_ptr<PlacementPolicy>()>;

  /**
   * @param rooms the site's rooms (not owned; must outlive the placer)
   * @param factory builds the per-room placement policy
   */
  SitePlacer(std::vector<const power::RoomTopology*> rooms,
             PolicyFactory factory);

  /**
   * Places @p trace into the first room; its rejections go to the
   * second, and so on. Deployment ids are preserved end to end.
   */
  SitePlacement Place(const std::vector<workload::Deployment>& trace) const;

  int num_rooms() const { return static_cast<int>(rooms_.size()); }

 private:
  std::vector<const power::RoomTopology*> rooms_;
  PolicyFactory factory_;
};

}  // namespace flex::offline

#endif  // FLEX_OFFLINE_SITE_HPP_
