#include "policies.hpp"

#include <array>
#include <utility>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace flex::offline {

using power::PduPairId;
using power::RoomTopology;
using workload::Category;
using workload::Deployment;

namespace {

Placement
MakeEmptyPlacement(const std::vector<Deployment>& trace)
{
  Placement placement;
  placement.deployments = trace;
  placement.assignment.assign(trace.size(), std::nullopt);
  return placement;
}

}  // namespace

Placement
RandomPolicy::Place(const RoomTopology& topology,
                    const std::vector<Deployment>& trace)
{
  Rng rng(seed_);
  Placement placement = MakeEmptyPlacement(trace);
  CapacityTracker tracker(topology);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const std::vector<PduPairId> feasible = tracker.FeasiblePairs(trace[i]);
    if (feasible.empty())
      continue;  // rejected: routed to another room
    const PduPairId p = feasible[static_cast<std::size_t>(rng.UniformInt(
        0, static_cast<std::int64_t>(feasible.size()) - 1))];
    tracker.Place(trace[i], p);
    placement.assignment[i] = p;
  }
  return placement;
}

Placement
BalancedRoundRobinPolicy::Place(const RoomTopology& topology,
                                const std::vector<Deployment>& trace)
{
  Placement placement = MakeEmptyPlacement(trace);
  CapacityTracker tracker(topology, model_);
  // Round-robin with a balance objective: among feasible pairs, take the
  // one carrying the least power of this deployment's category (so the
  // demand from each category spreads evenly under every UPS), breaking
  // ties by total load and then by a rotating cursor. Deployment sizes
  // are heterogeneous, so balancing watts beats balancing counts.
  const int pairs = topology.NumPduPairs();
  std::vector<std::array<Watts, 3>> category_load(
      static_cast<std::size_t>(pairs), {Watts(0.0), Watts(0.0), Watts(0.0)});
  int cursor[3] = {0, 0, 0};
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Deployment& d = trace[i];
    const int c = static_cast<int>(d.category);
    PduPairId best = -1;
    for (int step = 0; step < pairs; ++step) {
      const PduPairId p = (cursor[c] + step) % pairs;
      if (!tracker.CanPlace(d, p))
        continue;
      if (best < 0)
        best = p;
      const Watts best_cat =
          category_load[static_cast<std::size_t>(best)][static_cast<std::size_t>(c)];
      const Watts p_cat =
          category_load[static_cast<std::size_t>(p)][static_cast<std::size_t>(c)];
      if (p_cat < best_cat ||
          (p_cat.ApproxEquals(best_cat) &&
           tracker.AllocatedLoad(p) < tracker.AllocatedLoad(best))) {
        best = p;
      }
    }
    if (best < 0)
      continue;  // rejected: routed to another room
    tracker.Place(d, best);
    placement.assignment[i] = best;
    category_load[static_cast<std::size_t>(best)][static_cast<std::size_t>(c)] +=
        d.AllocatedPower();
    cursor[c] = (best + 1) % pairs;
  }
  return placement;
}

BalancedRoundRobinPolicy
MakeCapMaestroLikePolicy()
{
  return BalancedRoundRobinPolicy(CorrectiveModel::kThrottleOnly,
                                  "CapMaestro-like (throttle-only)");
}

BalancedRoundRobinPolicy
MakeConventionalPolicy()
{
  return BalancedRoundRobinPolicy(CorrectiveModel::kNone,
                                  "Conventional (no actions)");
}

std::vector<Placement>
PlaceVariants(const RoomTopology& topology, const PolicyFactory& factory,
              const std::vector<std::vector<Deployment>>& variants,
              common::ThreadPool* pool)
{
  std::vector<Placement> results(variants.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(variants.size());
  for (std::size_t i = 0; i < variants.size(); ++i) {
    tasks.push_back([&, i] {
      const std::unique_ptr<PlacementPolicy> policy = factory();
      FLEX_CHECK_MSG(policy != nullptr, "policy factory returned null");
      results[i] = policy->Place(topology, variants[i]);
    });
  }
  if (pool != nullptr && tasks.size() > 1) {
    pool->Run(std::move(tasks));
  } else {
    for (const auto& task : tasks)
      task();
  }
  return results;
}

Placement
FirstFitPolicy::Place(const RoomTopology& topology,
                      const std::vector<Deployment>& trace)
{
  Placement placement = MakeEmptyPlacement(trace);
  CapacityTracker tracker(topology);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    for (PduPairId p = 0; p < topology.NumPduPairs(); ++p) {
      if (tracker.CanPlace(trace[i], p)) {
        tracker.Place(trace[i], p);
        placement.assignment[i] = p;
        break;
      }
    }
  }
  return placement;
}

}  // namespace flex::offline
