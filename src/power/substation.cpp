#include "substation.hpp"

#include "common/error.hpp"

namespace flex::power {

SubstationConfig
SubstationConfig::ForRooms(int rooms, const RoomConfig& room,
                           double headroom_fraction)
{
  FLEX_REQUIRE(rooms >= 1, "substation needs at least one room");
  FLEX_REQUIRE(headroom_fraction > 0.0, "headroom fraction must be positive");
  const RoomTopology topology(room);
  SubstationConfig config;
  config.capacity = topology.TotalProvisionedPower() *
                    (static_cast<double>(rooms) * headroom_fraction);
  return config;
}

SubstationStatus
EvaluateSubstation(const SubstationConfig& config, Watts fleet_load)
{
  SubstationStatus status;
  status.load = fleet_load;
  if (!config.enabled())
    return status;
  status.utilization = fleet_load / config.capacity;
  if (status.utilization > 1.0) {
    status.overloaded = true;
    status.overload_fraction = status.utilization - 1.0;
  }
  return status;
}

}  // namespace flex::power
