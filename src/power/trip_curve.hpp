/**
 * @file
 * UPS overload tolerance (trip) curves.
 *
 * Reproduces the paper's Fig. 6: how long a UPS can sustain a given
 * overload before tripping, as a function of load relative to rated
 * capacity, for batteries at the beginning and end of their life. At the
 * worst-case 4N/3 failover load of 133%, the end-of-life curve gives
 * 10 seconds — the budget that bounds Flex-Online's end-to-end latency.
 */
#ifndef FLEX_POWER_TRIP_CURVE_HPP_
#define FLEX_POWER_TRIP_CURVE_HPP_

#include "common/piecewise.hpp"
#include "common/units.hpp"

namespace flex::power {

/** Battery aging used to select a tolerance curve. */
enum class BatteryLife { kBeginOfLife, kEndOfLife };

/**
 * Overload tolerance as a function of load fraction (1.0 = rated
 * capacity).
 *
 * Loads at or below rated capacity are sustainable indefinitely (the
 * 3.5-minute generator ride-through at 100% is modeled separately via
 * RideThroughAtRated()); above rated capacity the tolerance drops
 * steeply.
 */
class TripCurve {
 public:
  /** Builds the curve for the given battery life stage. */
  static TripCurve ForBatteryLife(BatteryLife life);

  /** Curve with custom breakpoints (load fraction -> seconds). */
  explicit TripCurve(PiecewiseLinear tolerance);

  /**
   * Tolerance before trip at @p load_fraction of rated capacity.
   * Effectively unbounded (kIndefinite) at or below 1.0.
   */
  Seconds ToleranceAt(double load_fraction) const;

  /**
   * True when sustaining @p load_fraction for @p overload_duration
   * exceeds the tolerance window — i.e. the UPS would have tripped.
   */
  bool Exceeds(double load_fraction, Seconds overload_duration) const {
    return overload_duration > ToleranceAt(load_fraction);
  }

  /** Additional ride-through at rated load while generators start. */
  static Seconds RideThroughAtRated() { return Minutes(3.5); }

  /** Sentinel for "sustainable indefinitely". */
  static Seconds Indefinite() { return Hours(1e6); }

  /** The underlying piecewise curve (for plotting / benches). */
  const PiecewiseLinear& curve() const { return tolerance_; }

 private:
  PiecewiseLinear tolerance_;
};

}  // namespace flex::power

#endif  // FLEX_POWER_TRIP_CURVE_HPP_
