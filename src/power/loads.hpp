/**
 * @file
 * UPS load accounting under normal operation and failover.
 *
 * Implements the electrical semantics behind the paper's Eq. 2 and Eq. 4:
 * each PDU pair splits its load 50/50 between its two upstream UPSes
 * during normal operation; when a UPS fails, its half of every connected
 * PDU pair's load transfers instantaneously to the pair's other UPS.
 */
#ifndef FLEX_POWER_LOADS_HPP_
#define FLEX_POWER_LOADS_HPP_

#include <vector>

#include "common/units.hpp"
#include "power/topology.hpp"

namespace flex::power {

/** Power drawn (or allocated) under each PDU pair, indexed by PduPairId. */
using PduPairLoads = std::vector<Watts>;

/** Per-UPS load under normal (no-failure) operation. */
std::vector<Watts> NormalUpsLoads(const RoomTopology& topology,
                                  const PduPairLoads& pdu_loads);

/**
 * Per-UPS load immediately after UPS @p failed fails, before any
 * corrective action. The failed UPS's entry is zero.
 */
std::vector<Watts> FailoverUpsLoads(const RoomTopology& topology,
                                    const PduPairLoads& pdu_loads,
                                    UpsId failed);

/**
 * Stranded power (paper Eq. 5): provisioned capacity not covered by the
 * allocated loads, summed over all UPSes.
 */
Watts StrandedPower(const RoomTopology& topology,
                    const PduPairLoads& allocated);

/** Result of a failover safety validation. */
struct SafetyReport {
  bool safe = true;
  /** Worst overload fraction observed across all (failure, UPS) pairs. */
  double worst_overload_fraction = 0.0;
  /** Failure scenario producing the worst overload (-1 when none). */
  UpsId worst_failure = -1;
  /** UPS suffering the worst overload (-1 when none). */
  UpsId worst_ups = -1;
};

/**
 * Validates the paper's Eq. 4: for every single-UPS failure, the
 * post-corrective-action loads (@p capped_loads, i.e. CapPow per PDU
 * pair) must fit within every surviving UPS's rated capacity.
 */
SafetyReport ValidateFailoverSafety(const RoomTopology& topology,
                                    const PduPairLoads& capped_loads);

/**
 * Validates the paper's Eq. 2: normal-operation loads (@p allocated,
 * i.e. Pow per PDU pair) fit within every UPS's rated capacity.
 */
bool ValidateNormalOperation(const RoomTopology& topology,
                             const PduPairLoads& allocated);

}  // namespace flex::power

#endif  // FLEX_POWER_LOADS_HPP_
