/**
 * @file
 * UPS battery energy model.
 *
 * The trip curve (Fig. 6) is a static summary; this model tracks the
 * battery's usable energy through a failover episode: overload drains
 * it (superlinearly in the overload, a Peukert-style effect that
 * matches the curve's steep high-load end), underload recharges it
 * slowly. The Section VI lesson that legacy batteries cannot ride out a
 * full 33% overload long enough — and that new datacenters ship larger
 * batteries — is expressible as a bigger usable-energy budget.
 */
#ifndef FLEX_POWER_BATTERY_HPP_
#define FLEX_POWER_BATTERY_HPP_

#include "common/units.hpp"
#include "obs/observability.hpp"
#include "power/trip_curve.hpp"

namespace flex::power {

/** Parameters of one UPS battery string. */
struct BatteryConfig {
  /** UPS rated output; overload is measured against this. */
  Watts rated_power;
  /** Usable overload-ride-through energy at this life stage. */
  Joules usable_energy;
  /** Recharge rate while the UPS runs at or below rated power. */
  Watts recharge_power;
  /**
   * Peukert-style exponent: drain scales as overload^k, so deep
   * overloads exhaust the battery disproportionately fast. ~2 matches
   * the Fig. 6 anchors (10 s at 133%, ~1 s at 200%, end of life).
   */
  double peukert_exponent = 2.08;

  /**
   * Calibrated so the time-to-trip at the worst-case 4N/3 failover load
   * (133%) matches the Fig. 6 anchors: 10 s at end of battery life,
   * 30 s at beginning of life.
   */
  static BatteryConfig ForBatteryLife(BatteryLife life, Watts rated_power);
};

/**
 * Stateful battery: advance it with the instantaneous UPS load.
 */
class BatteryModel {
 public:
  explicit BatteryModel(BatteryConfig config);

  /**
   * Attaches instrumentation: publishes this battery's state of charge
   * and overload accumulation under power.ups<index>.* metric names.
   */
  void Bind(obs::Observability* obs, int ups_index);

  /** Advances the battery by @p dt under UPS output @p load. */
  void Advance(Watts load, Seconds dt);

  /** True once the energy budget was exhausted while overloaded. */
  bool tripped() const { return tripped_; }

  /** Remaining usable energy. */
  Joules remaining() const { return remaining_; }

  /** Remaining energy as a fraction of the usable budget. */
  double StateOfCharge() const;

  /** Time to trip at a constant @p load; Indefinite at/below rated. */
  Seconds TimeToTrip(Watts load) const;

  const BatteryConfig& config() const { return config_; }

 private:
  /** Energy drain rate at the given load (zero at/below rated). */
  double DrainWatts(Watts load) const;

  BatteryConfig config_;
  Joules remaining_;
  bool tripped_ = false;

  // Cached metric objects (registry lookups stay off the hot path).
  obs::Gauge* soc_metric_ = nullptr;
  obs::Counter* overload_energy_metric_ = nullptr;
  obs::Counter* overload_seconds_metric_ = nullptr;
  obs::Counter* trips_metric_ = nullptr;
};

}  // namespace flex::power

#endif  // FLEX_POWER_BATTERY_HPP_
