#include "battery.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.hpp"

namespace flex::power {

namespace {

/** Reference overload (fraction of rated) at which drain is nominal. */
constexpr double kReferenceOverload = 1.0 / 3.0;

}  // namespace

BatteryConfig
BatteryConfig::ForBatteryLife(BatteryLife life, Watts rated_power)
{
  FLEX_REQUIRE(rated_power > Watts(0.0), "rated power must be positive");
  BatteryConfig config;
  config.rated_power = rated_power;
  // At the reference 133% load the drain equals the raw overload power
  // (1/3 of rated), so usable energy = overload power x ride-through.
  const double ride_through_seconds =
      life == BatteryLife::kEndOfLife ? 10.0 : 30.0;
  config.usable_energy =
      rated_power * kReferenceOverload * Seconds(ride_through_seconds);
  // Recharging a ride-through budget takes minutes, not seconds.
  config.recharge_power = rated_power * 0.002;
  return config;
}

BatteryModel::BatteryModel(BatteryConfig config)
    : config_(config), remaining_(config.usable_energy)
{
  FLEX_REQUIRE(config_.rated_power > Watts(0.0),
               "rated power must be positive");
  FLEX_REQUIRE(config_.usable_energy > Joules(0.0),
               "usable energy must be positive");
  FLEX_REQUIRE(config_.recharge_power >= Watts(0.0),
               "recharge power must be non-negative");
  FLEX_REQUIRE(config_.peukert_exponent >= 1.0,
               "Peukert exponent must be >= 1");
}

double
BatteryModel::DrainWatts(Watts load) const
{
  if (load <= config_.rated_power)
    return 0.0;
  const double overload_fraction =
      (load - config_.rated_power) / config_.rated_power;
  const double raw = (load - config_.rated_power).value();
  // Peukert: drain is superlinear in the overload, normalized so that
  // at the reference overload the drain equals the raw overload power.
  return raw * std::pow(overload_fraction / kReferenceOverload,
                        config_.peukert_exponent - 1.0);
}

void
BatteryModel::Bind(obs::Observability* obs, int ups_index)
{
  if (obs == nullptr) {
    soc_metric_ = nullptr;
    overload_energy_metric_ = nullptr;
    overload_seconds_metric_ = nullptr;
    trips_metric_ = nullptr;
    return;
  }
  FLEX_REQUIRE(ups_index >= 0, "negative UPS index");
  obs::MetricsRegistry& metrics = obs->metrics();
  const std::string prefix = "power.ups" + std::to_string(ups_index);
  soc_metric_ = &metrics.gauge(prefix + ".soc");
  overload_energy_metric_ = &metrics.counter(prefix + ".overload_energy_j");
  overload_seconds_metric_ = &metrics.counter(prefix + ".overload_seconds");
  trips_metric_ = &metrics.counter(prefix + ".trips");
  soc_metric_->Set(StateOfCharge());
}

void
BatteryModel::Advance(Watts load, Seconds dt)
{
  FLEX_REQUIRE(dt.value() >= 0.0, "negative time step");
  const double drain = DrainWatts(load);
  if (drain > 0.0) {
    remaining_ -= Joules(drain * dt.value());
    const bool was_tripped = tripped_;
    if (remaining_ <= Joules(0.0)) {
      remaining_ = Joules(0.0);
      tripped_ = true;
    }
    if (overload_energy_metric_ != nullptr) {
      overload_energy_metric_->Increment(drain * dt.value());
      overload_seconds_metric_->Increment(dt.value());
      if (tripped_ && !was_tripped)
        trips_metric_->Increment();
    }
  } else {
    remaining_ += config_.recharge_power * dt;
    if (remaining_ > config_.usable_energy)
      remaining_ = config_.usable_energy;
  }
  if (soc_metric_ != nullptr)
    soc_metric_->Set(StateOfCharge());
}

double
BatteryModel::StateOfCharge() const
{
  return remaining_.value() / config_.usable_energy.value();
}

Seconds
BatteryModel::TimeToTrip(Watts load) const
{
  const double drain = DrainWatts(load);
  if (drain <= 0.0)
    return TripCurve::Indefinite();
  return Seconds(remaining_.value() / drain);
}

}  // namespace flex::power
