#include "topology.hpp"

#include "common/error.hpp"

namespace flex::power {

RoomConfig
RoomConfig::EvaluationRoom()
{
  RoomConfig config;
  config.num_ups = 4;
  config.redundancy_y = 3;
  config.ups_capacity = MegaWatts(2.4);
  config.pdu_pairs_per_ups_pair = 2;
  config.rows_per_pdu_pair = 3;
  config.racks_per_row = 20;
  return config;
}

RoomConfig
RoomConfig::EmulationRoom()
{
  RoomConfig config;
  config.num_ups = 4;
  config.redundancy_y = 3;
  config.ups_capacity = MegaWatts(1.2);
  config.pdu_pairs_per_ups_pair = 2;
  config.rows_per_pdu_pair = 3;
  config.racks_per_row = 10;
  return config;
}

RoomTopology::RoomTopology(const RoomConfig& config)
    : config_(config), trip_curve_(TripCurve::ForBatteryLife(config.battery_life))
{
  FLEX_REQUIRE(config_.num_ups >= 2, "need at least two UPSes");
  FLEX_REQUIRE(config_.redundancy_y >= 1 &&
                   config_.redundancy_y < config_.num_ups,
               "xN/y requires 1 <= y < x");
  FLEX_REQUIRE(config_.ups_capacity > Watts(0.0), "UPS capacity must be positive");
  FLEX_REQUIRE(config_.pdu_pairs_per_ups_pair >= 1,
               "need at least one PDU pair per UPS pair");
  FLEX_REQUIRE(config_.rows_per_pdu_pair >= 1, "need rows per PDU pair");
  FLEX_REQUIRE(config_.racks_per_row >= 1, "need racks per row");
  FLEX_REQUIRE(config_.pdu_rating > Watts(0.0),
               "PDU rating must be positive");

  // Balanced design: every unordered UPS pair backs the same number of
  // PDU pairs. This is what makes FailoverShare uniform and lets the room
  // tolerate any single UPS loss symmetrically.
  ups_to_pdus_.resize(static_cast<std::size_t>(config_.num_ups));
  for (int a = 0; a < config_.num_ups; ++a) {
    for (int b = a + 1; b < config_.num_ups; ++b) {
      for (int k = 0; k < config_.pdu_pairs_per_ups_pair; ++k) {
        const PduPairId p = static_cast<PduPairId>(pdu_to_ups_.size());
        pdu_to_ups_.push_back({a, b});
        ups_to_pdus_[static_cast<std::size_t>(a)].push_back(p);
        ups_to_pdus_[static_cast<std::size_t>(b)].push_back(p);
      }
    }
  }
}

int
RoomTopology::NumRows() const
{
  return NumPduPairs() * config_.rows_per_pdu_pair;
}

int
RoomTopology::RackSlotsPerPduPair() const
{
  return config_.rows_per_pdu_pair * config_.racks_per_row;
}

Watts
RoomTopology::UpsCapacity(UpsId u) const
{
  FLEX_REQUIRE(u >= 0 && u < NumUpses(), "UPS id out of range");
  return config_.ups_capacity;
}

Watts
RoomTopology::TotalProvisionedPower() const
{
  return config_.ups_capacity * static_cast<double>(config_.num_ups);
}

Watts
RoomTopology::FailoverBudget() const
{
  return TotalProvisionedPower() *
         (static_cast<double>(config_.redundancy_y) /
          static_cast<double>(config_.num_ups));
}

Watts
RoomTopology::ReservedPower() const
{
  return TotalProvisionedPower() - FailoverBudget();
}

std::pair<UpsId, UpsId>
RoomTopology::UpsesOfPduPair(PduPairId p) const
{
  FLEX_REQUIRE(p >= 0 && p < NumPduPairs(), "PDU pair id out of range");
  return pdu_to_ups_[static_cast<std::size_t>(p)];
}

const std::vector<PduPairId>&
RoomTopology::PduPairsOfUps(UpsId u) const
{
  FLEX_REQUIRE(u >= 0 && u < NumUpses(), "UPS id out of range");
  return ups_to_pdus_[static_cast<std::size_t>(u)];
}

PduPairId
RoomTopology::PduPairOfRow(RowId r) const
{
  FLEX_REQUIRE(r >= 0 && r < NumRows(), "row id out of range");
  return r / config_.rows_per_pdu_pair;
}

std::vector<RowId>
RoomTopology::RowsOfPduPair(PduPairId p) const
{
  FLEX_REQUIRE(p >= 0 && p < NumPduPairs(), "PDU pair id out of range");
  std::vector<RowId> rows;
  rows.reserve(static_cast<std::size_t>(config_.rows_per_pdu_pair));
  for (int i = 0; i < config_.rows_per_pdu_pair; ++i)
    rows.push_back(p * config_.rows_per_pdu_pair + i);
  return rows;
}

double
RoomTopology::FailoverShare(UpsId f, UpsId u) const
{
  FLEX_REQUIRE(f >= 0 && f < NumUpses(), "UPS id out of range");
  FLEX_REQUIRE(u >= 0 && u < NumUpses(), "UPS id out of range");
  if (f == u)
    return 0.0;
  // Balanced design: f's PDU pairs are spread evenly over the other x-1
  // UPSes, so each survivor takes an equal share of f's load.
  return 1.0 / static_cast<double>(config_.num_ups - 1);
}

}  // namespace flex::power
