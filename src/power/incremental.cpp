#include "incremental.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace flex::power {

IncrementalUpsLoads::IncrementalUpsLoads(const RoomTopology& topology)
    : topology_(&topology),
      pdu_loads_(static_cast<std::size_t>(topology.NumPduPairs()),
                 Watts(0.0)),
      ups_loads_(static_cast<std::size_t>(topology.NumUpses()), Watts(0.0))
{
}

void
IncrementalUpsLoads::SetFailedUps(UpsId failed)
{
  FLEX_REQUIRE(failed >= -1 && failed < topology_->NumUpses(),
               "failed UPS id out of range");
  if (failed == failed_)
    return;
  failed_ = failed;
  Resync();
}

void
IncrementalUpsLoads::ApplyDelta(PduPairId p, Watts delta)
{
  FLEX_REQUIRE(p >= 0 && p < topology_->NumPduPairs(),
               "PDU pair id out of range");
  const auto idx = static_cast<std::size_t>(p);
  pdu_loads_[idx] += delta;
  if (pdu_loads_[idx].value() < 0.0) {
    // FP cancellation can leave a ~-1e-12 W residue when the last rack
    // on a pair powers off; clamp it so exact rescans (which reject
    // negative loads) stay callable. Anything larger is a real
    // accounting bug.
    FLEX_REQUIRE(pdu_loads_[idx].value() > -1e-3, "negative PDU pair load");
    pdu_loads_[idx] = Watts(0.0);
  }
  total_ += delta;
  const auto [u1, u2] = topology_->UpsesOfPduPair(p);
  if (u1 == failed_) {
    ups_loads_[static_cast<std::size_t>(u2)] += delta;
  } else if (u2 == failed_) {
    ups_loads_[static_cast<std::size_t>(u1)] += delta;
  } else {
    const Watts half = delta * 0.5;
    ups_loads_[static_cast<std::size_t>(u1)] += half;
    ups_loads_[static_cast<std::size_t>(u2)] += half;
  }
  ++delta_count_;
}

void
IncrementalUpsLoads::SetAllPduLoads(const PduPairLoads& loads)
{
  FLEX_REQUIRE(static_cast<int>(loads.size()) == topology_->NumPduPairs(),
               "PDU loads must have one entry per PDU pair");
  pdu_loads_ = loads;
  Resync();
}

void
IncrementalUpsLoads::Resync()
{
  ups_loads_ = RescanUpsLoads();
  total_ = Watts(0.0);
  for (const Watts& w : pdu_loads_)
    total_ += w;
  ++resync_count_;
}

std::vector<Watts>
IncrementalUpsLoads::RescanUpsLoads() const
{
  return failed_ < 0 ? NormalUpsLoads(*topology_, pdu_loads_)
                     : FailoverUpsLoads(*topology_, pdu_loads_, failed_);
}

double
IncrementalUpsLoads::MaxUpsErrorWatts() const
{
  const std::vector<Watts> exact = RescanUpsLoads();
  double worst = 0.0;
  for (std::size_t u = 0; u < exact.size(); ++u)
    worst = std::max(worst, std::abs(ups_loads_[u].value() - exact[u].value()));
  return worst;
}

}  // namespace flex::power
