/**
 * @file
 * Fleet-level shared substation capacity.
 *
 * Flex's economics are a fleet argument: many rooms share one upstream
 * feed, and the zero-reserved-power claim is that failover headroom can
 * be pooled across them instead of reserved per room. This module models
 * that single shared resource — a substation capacity that the sum of
 * all room loads draws against — as a pure function evaluated at the
 * fleet engine's epoch barriers. It deliberately has no state and no
 * clock: the fleet merge hands it one aggregate load per epoch, in
 * serial room order, so the verdict is bit-identical at any lane count.
 */
#ifndef FLEX_POWER_SUBSTATION_HPP_
#define FLEX_POWER_SUBSTATION_HPP_

#include "common/units.hpp"
#include "power/topology.hpp"

namespace flex::power {

/** Shared upstream feed for a fleet of rooms. */
struct SubstationConfig {
  /** Rated capacity of the shared feed; <= 0 disables the check. */
  Watts capacity = Watts(0.0);

  bool enabled() const { return capacity.value() > 0.0; }

  /**
   * Sizes a substation for @p rooms identical rooms: the summed room
   * provisioned power scaled by @p headroom_fraction. Headroom < 1
   * oversubscribes the feed (the Flex posture: rooms share failover
   * margin instead of each reserving its own); 1.0 matches provisioned
   * power exactly.
   */
  static SubstationConfig ForRooms(int rooms, const RoomConfig& room,
                                   double headroom_fraction);
};

/** Verdict for one epoch's aggregate fleet load. */
struct SubstationStatus {
  Watts load = Watts(0.0);
  /** load / capacity; 0 when the check is disabled. */
  double utilization = 0.0;
  bool overloaded = false;
  /** utilization - 1 when overloaded, else 0. */
  double overload_fraction = 0.0;
};

/**
 * Evaluates @p fleet_load against the shared cap. Pure function — the
 * fleet engine calls it once per epoch barrier with the serial-order
 * sum of room loads, so wiring it cannot perturb any room's event
 * trace.
 */
SubstationStatus EvaluateSubstation(const SubstationConfig& config,
                                    Watts fleet_load);

}  // namespace flex::power

#endif  // FLEX_POWER_SUBSTATION_HPP_
