/**
 * @file
 * Incremental per-UPS load aggregation.
 *
 * RoomEmulation used to recompute every UPS load with a full O(racks)
 * scan on each telemetry poll, sample, and safety check — the dominant
 * cost at room scale. IncrementalUpsLoads keeps per-PDU-pair and per-UPS
 * running sums that are updated in O(1) per rack-power delta, while
 * preserving the exact electrical semantics of NormalUpsLoads /
 * FailoverUpsLoads (50/50 split per PDU pair; a failed UPS's half moves
 * to the pair's sibling).
 *
 * Floating-point discipline: repeated `+= delta` accumulates rounding
 * drift relative to a fresh left-to-right sum, so callers periodically
 * Resync() (RoomEmulation does so once per workload step, where it
 * already touches every rack) and debug builds cross-check against
 * RescanUpsLoads() after every sample (see FLEX_AGG_VERIFY in
 * room_emulation.cpp).
 */
#ifndef FLEX_POWER_INCREMENTAL_HPP_
#define FLEX_POWER_INCREMENTAL_HPP_

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "power/loads.hpp"
#include "power/topology.hpp"

namespace flex::power {

/**
 * Running per-UPS loads maintained from rack-power deltas.
 *
 * Not thread-safe; each emulation lane owns its own instance.
 */
class IncrementalUpsLoads {
 public:
  explicit IncrementalUpsLoads(const RoomTopology& topology);

  /**
   * Switches the failover mode. @p failed is a UPS id, or -1 for normal
   * operation. Recomputes the UPS sums exactly from the PDU sums
   * (O(PDU pairs), which is tiny and happens only on failover edges).
   */
  void SetFailedUps(UpsId failed);

  /** Currently failed UPS, or -1 under normal operation. */
  UpsId failed_ups() const { return failed_; }

  /** Adds @p delta to PDU pair @p p's load and to its UPS shares. O(1). */
  void ApplyDelta(PduPairId p, Watts delta);

  /** Replaces all PDU pair loads and resyncs the UPS sums exactly. */
  void SetAllPduLoads(const PduPairLoads& loads);

  /**
   * Recomputes the UPS sums and total from the PDU sums with the same
   * summation order as NormalUpsLoads / FailoverUpsLoads, discarding any
   * accumulated delta rounding drift.
   */
  void Resync();

  /** Per-UPS loads under the current (normal or failover) mode. */
  const std::vector<Watts>& UpsLoads() const { return ups_loads_; }

  /** Per-PDU-pair running loads. */
  const PduPairLoads& PduLoads() const { return pdu_loads_; }

  /** Sum of all PDU pair loads (total room load). */
  Watts TotalLoad() const { return total_; }

  /**
   * Fresh exact recomputation from the PDU sums (does not modify the
   * running state). Debug cross-checks diff this against UpsLoads().
   */
  std::vector<Watts> RescanUpsLoads() const;

  /** Worst |running - rescanned| across UPSes, in watts. */
  double MaxUpsErrorWatts() const;

  /** O(1) deltas applied since construction. */
  std::uint64_t delta_count() const { return delta_count_; }

  /** Exact resyncs performed (SetAllPduLoads / SetFailedUps / Resync). */
  std::uint64_t resync_count() const { return resync_count_; }

 private:
  const RoomTopology* topology_;
  UpsId failed_ = -1;
  PduPairLoads pdu_loads_;
  std::vector<Watts> ups_loads_;
  Watts total_{0.0};
  std::uint64_t delta_count_ = 0;
  std::uint64_t resync_count_ = 0;
};

}  // namespace flex::power

#endif  // FLEX_POWER_INCREMENTAL_HPP_
