#include "loads.hpp"

#include "common/error.hpp"

namespace flex::power {

namespace {

void
CheckLoads(const RoomTopology& topology, const PduPairLoads& loads)
{
  FLEX_REQUIRE(static_cast<int>(loads.size()) == topology.NumPduPairs(),
               "PDU loads must have one entry per PDU pair");
  for (const Watts& w : loads)
    FLEX_REQUIRE(w >= Watts(0.0), "negative PDU pair load");
}

}  // namespace

std::vector<Watts>
NormalUpsLoads(const RoomTopology& topology, const PduPairLoads& pdu_loads)
{
  CheckLoads(topology, pdu_loads);
  std::vector<Watts> loads(static_cast<std::size_t>(topology.NumUpses()),
                           Watts(0.0));
  for (PduPairId p = 0; p < topology.NumPduPairs(); ++p) {
    const auto [u1, u2] = topology.UpsesOfPduPair(p);
    const Watts half = pdu_loads[static_cast<std::size_t>(p)] * 0.5;
    loads[static_cast<std::size_t>(u1)] += half;
    loads[static_cast<std::size_t>(u2)] += half;
  }
  return loads;
}

std::vector<Watts>
FailoverUpsLoads(const RoomTopology& topology, const PduPairLoads& pdu_loads,
                 UpsId failed)
{
  CheckLoads(topology, pdu_loads);
  FLEX_REQUIRE(failed >= 0 && failed < topology.NumUpses(),
               "failed UPS id out of range");
  std::vector<Watts> loads(static_cast<std::size_t>(topology.NumUpses()),
                           Watts(0.0));
  for (PduPairId p = 0; p < topology.NumPduPairs(); ++p) {
    const auto [u1, u2] = topology.UpsesOfPduPair(p);
    const Watts load = pdu_loads[static_cast<std::size_t>(p)];
    if (u1 == failed) {
      // u2's PDU picks up the whole pair load.
      loads[static_cast<std::size_t>(u2)] += load;
    } else if (u2 == failed) {
      loads[static_cast<std::size_t>(u1)] += load;
    } else {
      loads[static_cast<std::size_t>(u1)] += load * 0.5;
      loads[static_cast<std::size_t>(u2)] += load * 0.5;
    }
  }
  return loads;
}

Watts
StrandedPower(const RoomTopology& topology, const PduPairLoads& allocated)
{
  const std::vector<Watts> loads = NormalUpsLoads(topology, allocated);
  Watts stranded(0.0);
  for (UpsId u = 0; u < topology.NumUpses(); ++u)
    stranded += topology.UpsCapacity(u) - loads[static_cast<std::size_t>(u)];
  return stranded;
}

SafetyReport
ValidateFailoverSafety(const RoomTopology& topology,
                       const PduPairLoads& capped_loads)
{
  SafetyReport report;
  for (UpsId f = 0; f < topology.NumUpses(); ++f) {
    const std::vector<Watts> loads =
        FailoverUpsLoads(topology, capped_loads, f);
    for (UpsId u = 0; u < topology.NumUpses(); ++u) {
      if (u == f)
        continue;
      const double fraction =
          loads[static_cast<std::size_t>(u)] / topology.UpsCapacity(u);
      if (fraction > report.worst_overload_fraction) {
        report.worst_overload_fraction = fraction;
        report.worst_failure = f;
        report.worst_ups = u;
      }
    }
  }
  report.safe = report.worst_overload_fraction <= 1.0 + 1e-9;
  return report;
}

bool
ValidateNormalOperation(const RoomTopology& topology,
                        const PduPairLoads& allocated)
{
  const std::vector<Watts> loads = NormalUpsLoads(topology, allocated);
  for (UpsId u = 0; u < topology.NumUpses(); ++u) {
    if (loads[static_cast<std::size_t>(u)] >
        topology.UpsCapacity(u) + Watts(1e-6))
      return false;
  }
  return true;
}

}  // namespace flex::power
