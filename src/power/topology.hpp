/**
 * @file
 * Distributed-redundant datacenter room power topology.
 *
 * Models the paper's Fig. 2: an xN/y distributed-redundant UPS level
 * (4N/3 by default) feeding 2N-redundant PDU pairs, which feed rows of
 * racks. Every PDU pair is connected active-active to two distinct
 * upstream UPSes; in a balanced design each unordered UPS pair backs the
 * same number of PDU pairs, so a failed UPS sheds roughly 1/(x-1) of its
 * load to each surviving UPS.
 */
#ifndef FLEX_POWER_TOPOLOGY_HPP_
#define FLEX_POWER_TOPOLOGY_HPP_

#include <utility>
#include <vector>

#include "common/units.hpp"
#include "power/trip_curve.hpp"

namespace flex::power {

/** Identifier types; indices into the topology's component arrays. */
using UpsId = int;
using PduPairId = int;
using RowId = int;

/** Configuration for building a RoomTopology. */
struct RoomConfig {
  /** Number of UPSes (the "x" in xN/y). */
  int num_ups = 4;
  /** Number of UPSes that must carry the room after one fails ("y"). */
  int redundancy_y = 3;
  /** Rated capacity of each UPS. */
  Watts ups_capacity = MegaWatts(2.4);
  /** PDU pairs per unordered UPS pair (balanced across all pairs). */
  int pdu_pairs_per_ups_pair = 2;
  /** Rows fed by each PDU pair. */
  int rows_per_pdu_pair = 3;
  /** Rack positions available per row. */
  int racks_per_row = 20;
  /** Battery aging for the trip curves. */
  BatteryLife battery_life = BatteryLife::kEndOfLife;
  /**
   * Rating of each PDU. PDU pairs are 2N-redundant (Fig. 2): either PDU
   * must carry the whole pair load alone if its sibling fails, so the
   * pair's total allocation is capped at one PDU's rating. The default
   * is sized so UPS power, not PDU power, is the binding resource, as
   * in the paper; lower it to study PDU-bound rooms.
   */
  Watts pdu_rating = MegaWatts(1.6);
  /**
   * Cooling airflow available per row, in CFM. The default tracks the
   * paper's observation that cooling is overprovisioned for backward
   * compatibility and rarely binds.
   */
  double row_cooling_cfm = 1.0e9;

  /**
   * The paper's Section V-A evaluation room: 9.6 MW provisioned across
   * four 2.4 MW UPSes (4N/3), 12 PDU pairs, 36 rows.
   */
  static RoomConfig EvaluationRoom();

  /**
   * The paper's Section V-C emulation room: 4.8 MW across four 1.2 MW
   * UPSes, 36 rows of 10 racks (one emulated server per rack).
   */
  static RoomConfig EmulationRoom();
};

/**
 * Immutable description of one datacenter room's power delivery graph.
 *
 * The default configuration reproduces the paper's 9.6 MW evaluation
 * room: 4 UPSes of 2.4 MW (4N/3), 12 PDU pairs (2 per UPS-pair combo),
 * 36 rows of 10 racks.
 */
class RoomTopology {
 public:
  explicit RoomTopology(const RoomConfig& config);

  int NumUpses() const { return config_.num_ups; }
  int NumPduPairs() const { return static_cast<int>(pdu_to_ups_.size()); }
  int NumRows() const;
  int RacksPerRow() const { return config_.racks_per_row; }
  int RowsPerPduPair() const { return config_.rows_per_pdu_pair; }
  /** Rack positions under one PDU pair. */
  int RackSlotsPerPduPair() const;

  const RoomConfig& config() const { return config_; }

  /** Rated capacity of UPS @p u. */
  Watts UpsCapacity(UpsId u) const;

  /** Sum of all UPS capacities ("provisioned" power in the paper). */
  Watts TotalProvisionedPower() const;

  /**
   * The conventional (non-Flex) allocation limit: provisioned * y/x
   * (Section II-A). Load beyond this is only usable by Flex.
   */
  Watts FailoverBudget() const;

  /** Power reserved in a conventional room: provisioned - budget. */
  Watts ReservedPower() const;

  /** The two upstream UPSes of PDU pair @p p (active-active). */
  std::pair<UpsId, UpsId> UpsesOfPduPair(PduPairId p) const;

  /** PDU pairs connected to UPS @p u. */
  const std::vector<PduPairId>& PduPairsOfUps(UpsId u) const;

  /** The PDU pair feeding row @p r. */
  PduPairId PduPairOfRow(RowId r) const;

  /** Rows fed by PDU pair @p p. */
  std::vector<RowId> RowsOfPduPair(PduPairId p) const;

  /** Trip curve shared by all UPSes in the room. */
  const TripCurve& trip_curve() const { return trip_curve_; }

  /** Cooling airflow available per row (CFM). */
  double RowCoolingCfm() const { return config_.row_cooling_cfm; }

  /**
   * Maximum allocation under one PDU pair: a single PDU's rating, since
   * 2N redundancy requires either PDU to carry the pair alone.
   */
  Watts PduPairAllocationLimit() const { return config_.pdu_rating; }

  /**
   * Fraction of UPS @p f's load that lands on UPS @p u when f fails,
   * assuming load is balanced across f's PDU pairs (1/(x-1) in a
   * balanced design, 0 for u == f).
   */
  double FailoverShare(UpsId f, UpsId u) const;

 private:
  RoomConfig config_;
  TripCurve trip_curve_;
  std::vector<std::pair<UpsId, UpsId>> pdu_to_ups_;
  std::vector<std::vector<PduPairId>> ups_to_pdus_;
};

}  // namespace flex::power

#endif  // FLEX_POWER_TOPOLOGY_HPP_
