#include "trip_curve.hpp"

#include "common/error.hpp"

namespace flex::power {

TripCurve::TripCurve(PiecewiseLinear tolerance)
    : tolerance_(std::move(tolerance))
{
  FLEX_REQUIRE(!tolerance_.empty(), "trip curve needs breakpoints");
}

TripCurve
TripCurve::ForBatteryLife(BatteryLife life)
{
  // Fig. 6 shape: tolerance in seconds vs. load fraction. The end-of-life
  // battery provides 10 s at the worst-case 133% failover load; the
  // begin-of-life battery is roughly 3x more tolerant across the range.
  switch (life) {
    case BatteryLife::kEndOfLife:
      return TripCurve(PiecewiseLinear{{1.00, 210.0},
                                       {1.10, 60.0},
                                       {1.20, 25.0},
                                       {1.33, 10.0},
                                       {1.50, 4.0},
                                       {2.00, 1.0}});
    case BatteryLife::kBeginOfLife:
      return TripCurve(PiecewiseLinear{{1.00, 630.0},
                                       {1.10, 180.0},
                                       {1.20, 75.0},
                                       {1.33, 30.0},
                                       {1.50, 12.0},
                                       {2.00, 3.0}});
  }
  FLEX_CONFIG_ERROR("unknown battery life stage");
}

Seconds
TripCurve::ToleranceAt(double load_fraction) const
{
  FLEX_REQUIRE(load_fraction >= 0.0, "negative load fraction");
  if (load_fraction <= 1.0)
    return Indefinite();
  return Seconds(tolerance_(load_fraction));
}

}  // namespace flex::power
