/**
 * @file
 * End-to-end room emulation (paper Section V-C, Fig. 13).
 *
 * Emulates a 4.8 MW zero-reserved-power room of 360 racks through the
 * paper's four stages: (A) setup, (B) normal operation at ~80%
 * utilization, (C/D) a UPS failure that spikes the survivors above
 * their rated capacity, (E) Flex-Online detection and corrective
 * actions, and (F/G) UPS restoration and action release. The harness
 * wires together every substrate in the repository: the power topology,
 * Flex-Offline placement, synthetic workloads, the redundant telemetry
 * pipeline, multi-primary Flex controllers, and rack-manager actuation.
 *
 * Scale: rack state lives in flat structure-of-arrays vectors, and UPS
 * loads are maintained incrementally (power::IncrementalUpsLoads) from
 * rack-power deltas instead of per-tick O(racks) rescans, so rooms of
 * tens of thousands of racks simulate at interactive speed. Set
 * EmulationConfig::incremental_aggregation = false to fall back to the
 * original full-rescan path (the measured baseline for the room-scale
 * bench), and verify_aggregation = true to cross-check the running sums
 * against an exact rescan at every sample.
 */
#ifndef FLEX_EMULATION_ROOM_EMULATION_HPP_
#define FLEX_EMULATION_ROOM_EMULATION_HPP_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "actuation/rack_manager.hpp"
#include "emulation/workload_model.hpp"
#include "emulation/scale_out.hpp"
#include "obs/alerts.hpp"
#include "offline/placement.hpp"
#include "online/controller.hpp"
#include "power/battery.hpp"
#include "power/incremental.hpp"
#include "power/topology.hpp"
#include "sim/event_queue.hpp"
#include "telemetry/pipeline.hpp"
#include "workload/impact.hpp"

namespace flex::obs {
class LiveHub;
class StallWatchdog;
}  // namespace flex::obs

namespace flex::solver {
struct LiveSolverStats;
}  // namespace flex::solver

namespace flex::emulation {

/** Emulation knobs; defaults reproduce the paper's Section V-C setup. */
struct EmulationConfig {
  power::RoomConfig room = power::RoomConfig::EmulationRoom();
  /** Target aggregate utilization at the UPS level during stage B. */
  double target_utilization = 0.80;
  /** Flex power as a fraction of rack allocation (paper: 0.85). */
  double flex_power_fraction = 0.85;
  /** Impact functions by workload name (defaults to Fig. 11(c)). */
  workload::ImpactScenario scenario = workload::ImpactScenario::Realistic1();

  Seconds setup_duration = Minutes(4.0);
  Seconds failover_at = Minutes(12.0);
  Seconds restore_at = Minutes(24.0);
  Seconds end_at = Minutes(32.0);
  Seconds workload_step = Seconds(1.0);
  Seconds sample_period = Seconds(5.0);
  /**
   * Safety-monitor cadence (per-UPS overload and trip-curve tracking).
   * <= 0 (default) folds the monitor into each sample tick, i.e. the
   * sample_period cadence. > 0 schedules a dedicated monitor at this
   * period: with incremental aggregation each tick costs O(UPSes), so
   * 100 Hz trip-curve monitoring stays affordable at 10k racks, while
   * the full-rescan baseline pays O(racks) per tick. The paper's trip
   * curves resolve overloads down to tens of milliseconds, which the
   * default 5 s sampling cannot see.
   */
  Seconds monitor_period = Seconds(0.0);
  power::UpsId failed_ups = 0;

  /**
   * Scripted telemetry outage: every poller fails at `telemetry_
   * outage_at` and recovers at `telemetry_outage_until` (disabled
   * unless until > at > 0). The drill behind the alerting acceptance
   * test: readings stop flowing, `pipeline.readings_delivered` goes
   * flat, and the staleness rule walks pending → firing → resolved.
   */
  Seconds telemetry_outage_at = Seconds(0.0);
  Seconds telemetry_outage_until = Seconds(0.0);

  int num_controllers = 3;  ///< multi-primary replicas
  /**
   * Per-batch wall-clock budget for the Flex-Offline placement MILP
   * that builds the room. Solves that converge within the budget are
   * deterministic; budget-limited solves are not, so sweeps that need
   * bit-identity should keep this high enough to converge.
   */
  double placement_solve_seconds = 2.0;
  /**
   * Node budget per placement batch solve; 0 keeps the solver default.
   * Unlike the wall-clock budget above, a node budget truncates the
   * search at the same point on every machine, so determinism tests and
   * sweeps should set a finite node budget together with an effectively
   * infinite placement_solve_seconds instead of relying on fast
   * hardware to converge within the wall budget.
   */
  std::int64_t placement_max_nodes = 0;
  telemetry::PipelineConfig pipeline;
  actuation::RackManagerConfig rack_manager;
  online::ControllerConfig controller;
  std::uint64_t seed = 2021;

  /**
   * Maintain UPS loads incrementally from rack-power deltas (the scaled
   * path). false restores the original full-rescan behaviour: every
   * telemetry tick, sample, and safety check walks all racks — the
   * baseline the room-scale bench measures its speedup against.
   */
  bool incremental_aggregation = true;
  /**
   * Cross-check the incremental sums against an exact brute-force rescan
   * at every sample (FLEX_CHECK on divergence). Defaults on under
   * sanitized builds (-DFLEX_AGG_VERIFY, set by FLEX_SANITIZE); always
   * settable explicitly for tests.
   */
#ifdef FLEX_AGG_VERIFY
  bool verify_aggregation = true;
#else
  bool verify_aggregation = false;
#endif
  /** Event-queue backing store (calendar wheel by default). */
  sim::EventQueue::Impl queue_impl = sim::EventQueue::Impl::kCalendar;

  /**
   * Optional instrumentation sink. When set, the harness binds it to its
   * internal clock and propagates it into the pipeline, controller,
   * rack-manager, and battery sub-configs.
   */
  obs::Observability* obs = nullptr;

  /**
   * Optional live observability mailbox (obs/http_export.hpp). Every
   * sample tick publishes snapshot copies — metrics (the obs registry's
   * when obs is set, a synthesized minimum otherwise), reaction-trace
   * and flight-recorder tails, and a health rollup — that an HTTP
   * scraper reads from its own thread. Publishing copies state *out*;
   * nothing is ever read back, so wiring a hub cannot change a single
   * simulated event. Safe to share one hub across parallel sweep lanes
   * (last writer wins). Not owned.
   */
  obs::LiveHub* live = nullptr;

  /**
   * Optional stall watchdog. The harness registers one heartbeat entry
   * per RoomEmulation (named by seed) and beats it from the sample
   * loop, so a wedged sim thread is flagged on /healthz. Not owned.
   */
  obs::StallWatchdog* watchdog = nullptr;

  /**
   * Optional live solver-progress sink for the placement MILP solves
   * that build the room (wave occupancy, open nodes, warm-basis hits).
   * The solver only ever writes it; the HTTP plane reads it through
   * AddLiveGauge callbacks. Not owned.
   */
  solver::LiveSolverStats* solver_live = nullptr;

  /**
   * Deterministic time-series history + alert rules (obs/alerts.hpp).
   * When enabled, every sample tick folds a metrics snapshot — the obs
   * registry's when obs is set, the synthesized rows otherwise — into a
   * lane-local TimeSeriesStore and evaluates the rule set on simulated
   * time. Fully functional headless: the store, the engine, and their
   * fingerprints in the report exist with no LiveHub and no obs sink,
   * which is what lets sweep lanes prove bit-identity at any thread
   * count.
   */
  obs::AlertsConfig alerts;
};

/** One point of the recorded time series. */
struct EmulationSample {
  double t_seconds = 0.0;
  std::vector<double> ups_mw;    ///< true per-UPS power
  double total_rack_mw = 0.0;
  int racks_off = 0;
  int racks_capped = 0;
};

/** Everything the emulation measured. */
struct EmulationReport {
  std::vector<EmulationSample> series;

  int total_racks = 0;
  int sr_racks = 0;
  int capable_racks = 0;
  int noncap_racks = 0;

  /** Peak counts of acted racks during the failover episode. */
  int sr_shutdown_peak = 0;
  int capable_capped_peak = 0;
  /** As fractions of their categories (paper: 64% and 51%). */
  double sr_shutdown_fraction = 0.0;
  double capable_capped_fraction = 0.0;
  /** Non-cap-able racks must never be acted on. */
  int noncap_acted = 0;

  /** Detection -> all actions enforced, first episode (paper: ~2 s). */
  double enforcement_latency_seconds = 0.0;
  /** Failover -> power back under every UPS limit. */
  double time_to_safe_seconds = 0.0;
  /** p99.9 telemetry data latency (paper: < 1.5 s). */
  double data_latency_p999 = 0.0;

  /** p95 latency inflation of throttled cap-able racks (paper: +4.7%). */
  double p95_increase_mean = 0.0;
  /** Worst per-rack inflation (paper: 14%). */
  double p95_increase_worst = 0.0;

  /** True if any UPS stayed above rated capacity past its tolerance. */
  bool safety_violated = false;
  double worst_overload_fraction = 0.0;
  double overload_duration_seconds = 0.0;
  /** True if any UPS battery exhausted its ride-through energy. */
  bool battery_tripped = false;
  /** Lowest battery state of charge seen on any UPS (1.0 = full). */
  double min_battery_state_of_charge = 1.0;

  /** Software-redundant service continuity through the emergency. */
  double sr_capacity_min_fraction = 1.0;
  /** Capacity once the remote AZ absorbed the shutdowns. */
  double sr_capacity_after_scaleout = 1.0;
  /** Local auto-recovery attempts the notification inhibited (want 0). */
  int sr_inhibited_auto_recoveries = 0;
  /** Power-emergency notifications published by the controllers. */
  int notifications_published = 0;

  /** Aggregated controller stats across replicas. */
  int overdraw_events = 0;
  int throttle_commands = 0;
  int shutdown_commands = 0;

  /** Simulation-engine accounting (for the room-scale bench). */
  std::uint64_t events_executed = 0;
  std::uint64_t aggregate_deltas = 0;   ///< O(1) incremental updates
  std::uint64_t aggregate_resyncs = 0;  ///< exact O(PDU) resyncs
  std::uint64_t verify_rescans = 0;     ///< debug cross-check rescans
  std::uint64_t monitor_ticks = 0;      ///< safety-monitor evaluations

  /** Alerting results (populated when EmulationConfig::alerts.enabled). */
  std::uint64_t alerts_fired = 0;
  std::vector<obs::AlertTransition> alert_timeline;
  std::uint64_t alert_fingerprint = 0;  ///< engine timeline + states
  std::uint64_t store_fingerprint = 0;  ///< full time-series contents
  std::uint64_t store_samples = 0;
};

/**
 * A lock-free, allocation-free view of one room's state at an epoch
 * barrier. The fleet engine fills one per lane (in serial room order)
 * instead of copying reports mid-run.
 */
struct RoomEpochView {
  double t_seconds = 0.0;
  double total_rack_mw = 0.0;
  double max_ups_load_fraction = 0.0;
  std::uint64_t events_executed = 0;
  int racks_off = 0;
  int racks_capped = 0;
  bool safety_violated = false;
  bool battery_tripped = false;
  std::uint64_t samples_recorded = 0;
  std::uint64_t alert_edges = 0;   ///< alert timeline length so far
  std::uint64_t alerts_fired = 0;  ///< cumulative firing edges
};

/**
 * The emulation harness. Also the telemetry pipeline's ground-truth
 * power source.
 *
 * Two driving modes share one timeline: Run() executes it monolithically,
 * while the epoch-bounded API — StartTimeline() / AdvanceTo() / Finish()
 * — lets an external driver (emulation/fleet_emulation.hpp) tile the same
 * timeline into fixed simulated-time epochs. EventQueue::RunUntil tiles
 * exactly, so the two modes execute bit-identical event traces.
 */
class RoomEmulation : public telemetry::PowerSource {
 public:
  explicit RoomEmulation(EmulationConfig config);
  ~RoomEmulation() override;

  /** Runs the full timeline and returns the report. */
  EmulationReport Run();

  // --- Epoch-bounded driving (the fleet engine's lane API) ---------------
  /**
   * Schedules the full timeline and starts the pipeline without running
   * any events. Also reserves the report's sample series at its final
   * size, so steady-state epoch stepping records samples without
   * allocating. Call once; Run() calls it internally.
   */
  void StartTimeline();
  /**
   * Executes all events up to and including @p horizon (clamped to the
   * timeline end) and leaves the clock at the horizon. @return events
   * executed in this segment.
   */
  std::uint64_t AdvanceTo(Seconds horizon);
  /** Earliest pending event, +inf when drained (lane idle detection). */
  Seconds NextEventTime() { return queue_.NextEventTime(); }
  /**
   * Stops the pipeline, drains the delivery tail, and assembles the
   * report. Requires the clock to have reached the timeline end.
   */
  EmulationReport Finish();
  /** Fills @p out from current state; no allocation, no side effects. */
  void SnapshotEpoch(RoomEpochView* out) const;
  /**
   * Fleet coupling channel (barrier path only): records the latest
   * fleet-level substation overload fraction so the room's metric
   * snapshots carry the shared-feed context. Purely observational — the
   * value is never read by any control decision, so wiring it cannot
   * change the room's event trace.
   */
  void SetFleetOverloadGauge(double overload_fraction);

  const EmulationConfig& config() const { return config_; }
  /** Racks the placement actually produced (known after construction). */
  int total_racks() const { return report_.total_racks; }

  // telemetry::PowerSource:
  Watts CurrentPower(telemetry::DeviceId device) const override;
  void CurrentPowerBatch(telemetry::DeviceKind kind,
                         std::vector<Watts>& out) const override;

  const power::RoomTopology& topology() const { return topology_; }
  const offline::Placement& placement() const { return placement_; }

  /** Telemetry pipeline access, e.g. for pre-run fault injection. */
  telemetry::TelemetryPipeline& pipeline() { return *pipeline_; }

  /** Time-series store / alert engine; nullptr unless alerts.enabled. */
  const obs::TimeSeriesStore* timeseries() const { return ts_store_.get(); }
  const obs::AlertEngine* alert_engine() const {
    return alert_engine_.get();
  }

 private:
  void BuildRoom();
  void StepWorkloads();
  void RecordSample();
  /**
   * The metrics view of the current tick: the obs registry's snapshot
   * when obs is set, otherwise synthesized sorted rows covering the
   * emulation + pipeline essentials. Shared by the store sampler and
   * the live publisher so both see identical values.
   */
  obs::MetricsSnapshot BuildLiveSnapshot();
  /** Copies fresh snapshots into config_.live / beats the watchdog. */
  void PublishLive(const obs::MetricsSnapshot& snapshot);
  /** One-time forensic dump when a rule fires (alerts.forensics_root). */
  void DumpAlertBundle(const obs::AlertStatus& status,
                       const obs::AlertTransition& edge);
  /** Overload + trip-curve tracking against the given true UPS loads. */
  void MonitorTick(const std::vector<Watts>& ups);
  void OnRackStateChanged(int rack_id);
  void RebuildAggregates();
  void VerifyAggregates();
  /** Rack power from the SoA state + actuation mirrors (any mode). */
  double ComputeRackPowerW(int rack_id, double ramp) const;
  double RampNow() const;
  Watts TrueRackPower(int rack_id) const;
  std::vector<Watts> TrueUpsLoads() const;
  /** UPS loads via whichever path the config selects. */
  std::vector<Watts> UpsLoadsNow() const;

  EmulationConfig config_;
  power::RoomTopology topology_;
  sim::EventQueue queue_;
  Rng rng_;

  offline::Placement placement_;
  std::vector<offline::Rack> layout_;

  // --- Rack state, structure-of-arrays (index == rack id == layout_
  // index; BuildRoom asserts the invariant). The actuation plane owns
  // the authoritative on/cap state; rack_on_/rack_cap_w_ mirror it so
  // the hot loops never chase through RackManager objects.
  std::vector<OuProcess> rack_util_;
  std::vector<double> rack_alloc_w_;
  std::vector<std::int32_t> rack_pdu_;
  std::vector<workload::Category> rack_category_;
  std::vector<double> rack_power_w_;  // cached true power (piecewise const)
  std::vector<char> rack_on_;
  std::vector<double> rack_cap_w_;  // active cap in watts; < 0 = none
  // Tail-latency tracking (cap-able racks only, but full-size for flat
  // indexing).
  std::vector<double> latency_factor_integral_;
  std::vector<double> latency_window_seconds_;
  std::vector<double> worst_latency_factor_;
  std::vector<char> was_throttled_;
  std::vector<int> sr_rack_ids_;
  std::vector<int> capable_rack_ids_;

  // Incremental aggregation state.
  power::IncrementalUpsLoads agg_;
  power::PduPairLoads pdu_scratch_;
  int off_count_ = 0;           // racks powered off
  int capped_count_ = 0;        // racks on with an active cap
  int noncap_acted_count_ = 0;  // non-cap-able racks off or capped
  std::uint64_t verify_rescans_ = 0;

  std::unique_ptr<actuation::ActuationPlane> plane_;
  std::unique_ptr<telemetry::TelemetryPipeline> pipeline_;
  std::vector<std::unique_ptr<online::FlexController>> controllers_;
  online::NotificationBus notifications_;
  std::unique_ptr<ScaleOutModel> sr_scale_out_;

  power::UpsId failed_ups_ = -1;
  int watchdog_id_ = -1;  ///< heartbeat slot in config_.watchdog
  // Epoch-bounded driving state.
  bool timeline_started_ = false;
  bool finished_ = false;
  double time_to_safe_ = -1.0;  ///< failover -> under-limit latency
  /** Latest fleet substation overload fraction; < 0 until the fleet
      barrier publishes one (standalone rooms never see it). */
  double fleet_overload_fraction_ = -1.0;
  std::unique_ptr<obs::TimeSeriesStore> ts_store_;
  std::unique_ptr<obs::AlertEngine> alert_engine_;
  bool alert_bundle_written_ = false;
  double max_ups_load_fraction_ = 0.0;  ///< latest sample's worst UPS
  EmulationReport report_;
  // Overload bookkeeping for the safety check.
  std::vector<double> overload_since_;  // per UPS; <0 = not overloaded
  std::vector<power::BatteryModel> batteries_;  // per UPS
};

}  // namespace flex::emulation

#endif  // FLEX_EMULATION_ROOM_EMULATION_HPP_
