/**
 * @file
 * Synthetic workload behaviour models for the room emulation.
 *
 * Substitutes for the paper's Section V-C benchmarks: an
 * Ornstein-Uhlenbeck utilization process stands in for the power draw of
 * TeraSort-like batch work and TPC-E-like transactional work, and an
 * M/M/1 tail-latency model maps a power cap to the p95 latency inflation
 * the paper measures on throttled racks.
 */
#ifndef FLEX_EMULATION_WORKLOAD_MODEL_HPP_
#define FLEX_EMULATION_WORKLOAD_MODEL_HPP_

#include "common/rng.hpp"
#include "common/units.hpp"

namespace flex::emulation {

/** Mean-reverting utilization process parameters. */
struct OuProcessConfig {
  double mean = 0.80;         ///< long-run utilization
  double reversion_rate = 0.05;  ///< pull toward the mean, per second
  double volatility = 0.02;   ///< diffusion per sqrt(second)
  double min = 0.40;
  double max = 0.98;
};

/**
 * Ornstein-Uhlenbeck process clipped to [min, max]; drives per-rack
 * utilization so power wanders realistically instead of stepping.
 */
class OuProcess {
 public:
  OuProcess(OuProcessConfig config, double initial);

  /** Advances by @p dt and returns the new value. */
  double Step(Seconds dt, Rng& rng);

  double value() const { return value_; }
  const OuProcessConfig& config() const { return config_; }

 private:
  OuProcessConfig config_;
  double value_;
};

/**
 * Latency response of a closed-loop transactional workload to CPU
 * throttling, as an M/M/1 sojourn-time model: with base server
 * utilization rho, slowing the server to a fraction `speed` of nominal
 * capacity inflates latency (and its percentiles, exponential sojourn)
 * by (1 - rho) / (speed - rho).
 */
class LatencyModel {
 public:
  explicit LatencyModel(double rho = 0.5);

  /**
   * p95 latency relative to the unthrottled baseline when the server
   * runs at @p speed (fraction of nominal, in (0, 1]). Saturates at a
   * large factor when speed approaches rho (queue blow-up).
   */
  double P95Factor(double speed) const;

  /**
   * Effective speed of a rack whose workload wants @p demand power but
   * is capped at @p cap: power scales roughly linearly with frequency in
   * the throttling range, so speed = cap / demand (clamped to 1).
   */
  static double SpeedUnderCap(Watts demand, Watts cap);

  double rho() const { return rho_; }

 private:
  double rho_;
};

}  // namespace flex::emulation

#endif  // FLEX_EMULATION_WORKLOAD_MODEL_HPP_
