#include "scale_out.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace flex::emulation {

ScaleOutModel::ScaleOutModel(sim::EventQueue& queue, ScaleOutConfig config)
    : queue_(queue), config_(std::move(config))
{
  FLEX_REQUIRE(config_.local_racks > 0, "service needs local racks");
  FLEX_REQUIRE(config_.remote_headroom_fraction >= 0.0,
               "remote headroom must be non-negative");
}

void
ScaleOutModel::OnNotification(const online::PowerEmergencyNotification& n)
{
  if (n.workload != config_.workload)
    return;
  if (n.cleared) {
    // All-clear: local racks boot back; remote capacity drains once they
    // are serving again.
    emergency_active_ = false;
    const std::uint64_t generation = ++generation_;
    queue_.Schedule(config_.local_recovery_delay, [this, generation] {
      if (generation != generation_)
        return;  // a newer emergency superseded this recovery
      down_racks_.clear();
      remote_active_ = 0;
      remote_target_ = 0;
    });
    return;
  }

  emergency_active_ = true;
  for (const int rack : n.racks)
    down_racks_.insert(rack);
  // Spin up replacements in the other AZ, bounded by remote headroom.
  const int wanted = static_cast<int>(
      std::min<double>(static_cast<double>(down_racks_.size()),
                       config_.remote_headroom_fraction *
                           static_cast<double>(config_.local_racks)));
  if (wanted > remote_target_) {
    remote_target_ = wanted;
    const int delta = wanted;
    const std::uint64_t generation = ++generation_;
    queue_.Schedule(config_.spin_up_delay, [this, generation, delta] {
      if (generation != generation_ || !emergency_active_)
        return;
      remote_active_ = std::max(remote_active_, delta);
    });
  }
}

void
ScaleOutModel::ObserveRackDown(int rack_id)
{
  if (down_racks_.count(rack_id))
    return;  // administratively down: the notification inhibits recovery
  if (!emergency_active_)
    return;  // normal operations (e.g. racks booting after an all-clear)
  // Unnotified loss during an emergency: the service's healing would
  // restart the rack, racing the Flex controller. Count the near-miss.
  ++attempted_restarts_;
}

double
ScaleOutModel::ServiceCapacityFraction() const
{
  const double local =
      static_cast<double>(config_.local_racks) -
      static_cast<double>(down_racks_.size());
  const double total = local + static_cast<double>(remote_active_);
  return std::max(0.0, total / static_cast<double>(config_.local_racks));
}

}  // namespace flex::emulation
