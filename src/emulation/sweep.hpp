/**
 * @file
 * Parallel room-emulation sweeps.
 *
 * The paper's evaluation (and ours) repeats the Section V-C emulation
 * over many independent trace variants: same room, different seeds.
 * Each variant is a self-contained RoomEmulation with its own event
 * queue and RNG stream, so variants fan out across
 * common::ThreadPool::Shared() lanes with zero shared mutable state and
 * merge serially in seed order — the result is bit-identical for any
 * thread count (the same discipline as the wave-synchronous solver).
 * The sample hash fingerprints every recorded sample of every variant;
 * the room-scale bench asserts it matches between 1-thread and
 * multi-thread runs.
 */
#ifndef FLEX_EMULATION_SWEEP_HPP_
#define FLEX_EMULATION_SWEEP_HPP_

#include <cstdint>
#include <vector>

#include "emulation/room_emulation.hpp"

namespace flex::emulation {

/** A sweep: `variants` rooms seeded base.seed, base.seed+1, ... */
struct SweepConfig {
  EmulationConfig base;
  int variants = 4;
  /**
   * Lanes to run on: 0 = the shared pool (all configured cores),
   * 1 = inline serial execution, n = a private pool of n lanes.
   */
  int threads = 0;
};

/** Merged sweep output, always in seed order. */
struct SweepResult {
  std::vector<EmulationReport> reports;  ///< reports[i] is seed base+i
  /** FNV-1a over every sample of every report, in seed order. */
  std::uint64_t sample_hash = 0;
  /** Lanes the sweep actually ran on. */
  int lanes = 0;
};

/** Deterministic fingerprint of one report's full time series. */
std::uint64_t HashEmulationReport(const EmulationReport& report);

/**
 * Runs the sweep. Each variant forces obs = nullptr (the metrics
 * registry is single-threaded; instrument a standalone RoomEmulation
 * instead when traces are wanted).
 */
SweepResult RunEmulationSweep(const SweepConfig& config);

}  // namespace flex::emulation

#endif  // FLEX_EMULATION_SWEEP_HPP_
