/**
 * @file
 * Sharded multi-room fleet engine.
 *
 * Steps N independent RoomEmulation instances — 100k+ racks in
 * aggregate — in parallel across common::ThreadPool lanes, in fixed
 * simulated-time epochs. Each lane owns one room outright: its calendar
 * wheel, its SoA rack state, its lane-local time-series store and alert
 * engine. Between epochs every lane is parked at the same simulated
 * time and the driver merges serially, in room order:
 *
 *   - per-room epoch summaries fold into a chained FNV-1a state hash
 *     per room (the lane-identity fingerprint),
 *   - freshly appended alert edges concatenate into one fleet timeline
 *     (epoch-major, then room-major, then time — deterministic because
 *     rooms are visited in index order at every barrier),
 *   - room loads sum into the shared-substation check (power/
 *     substation.hpp), whose overload verdict feeds back to each room
 *     as a purely observational gauge,
 *   - a fixed-row fleet metrics rollup is updated in place and
 *     published to the LiveHub.
 *
 * Determinism: rooms never share mutable state while stepping, every
 * cross-room read happens at a barrier in serial room order, and
 * EventQueue::RunUntil tiles exactly (RunUntil(t1); RunUntil(t2) runs
 * the event sequence of one RunUntil(t2)) — so every room hash, the
 * merged alert timeline, and the fleet rollup are bit-identical at 1,
 * 2, or 8 lanes, and identical to monolithic RoomEmulation::Run().
 *
 * Allocation: rooms reserve their sample series up front, epoch views
 * and wall-time accounting live in flat per-room vectors sized at
 * construction, and the rollup snapshot is built once and updated in
 * place — steady-state stepping allocates only the O(rooms) task list
 * handed to the pool each epoch.
 */
#ifndef FLEX_EMULATION_FLEET_EMULATION_HPP_
#define FLEX_EMULATION_FLEET_EMULATION_HPP_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "emulation/room_emulation.hpp"
#include "emulation/sweep.hpp"
#include "obs/metrics.hpp"
#include "power/substation.hpp"

namespace flex::common {
class ThreadPool;
}  // namespace flex::common

namespace flex::emulation {

/** A fleet: `rooms` copies of `room`, seeded room.seed, room.seed+1... */
struct FleetConfig {
  /** Per-room base configuration; room r runs with seed room.seed + r. */
  EmulationConfig room;
  int rooms = 4;
  /**
   * Lanes to step on: 0 = the shared pool (all configured cores),
   * 1 = inline serial execution, n = a private pool of n lanes.
   */
  int threads = 0;
  /** Simulated-time epoch length between merge barriers. */
  Seconds epoch = Seconds(30.0);
  /**
   * Shared upstream feed. Disabled (capacity <= 0) by default; when
   * enabled, every barrier sums the epoch-end room loads against it and
   * publishes the overload verdict back to each room's metric plane.
   */
  power::SubstationConfig substation;
  /** Optional live mailbox for the fleet rollup snapshot. Not owned. */
  obs::LiveHub* live = nullptr;
};

/** One alert edge in the merged fleet timeline. */
struct FleetAlertEdge {
  int room = 0;
  obs::AlertTransition edge;
};

/** One room's outcome plus its determinism fingerprints. */
struct FleetRoomResult {
  EmulationReport report;
  /** HashEmulationReport of the final report. */
  std::uint64_t report_hash = 0;
  /** FNV-1a chained over every epoch's RoomEpochView, in epoch order. */
  std::uint64_t epoch_hash = 0;
};

/** Merged fleet output, always in room order. */
struct FleetReport {
  std::vector<FleetRoomResult> rooms;
  /** FNV-1a over every room's (epoch_hash, report_hash), in order. */
  std::uint64_t fleet_hash = 0;
  /** Merged alert edges, epoch-major then room-major then time. */
  std::vector<FleetAlertEdge> alert_timeline;
  std::uint64_t alert_fingerprint = 0;

  int total_racks = 0;
  std::uint64_t epochs = 0;
  std::uint64_t events_executed = 0;
  /** Lanes the fleet actually stepped on. */
  int lanes = 0;

  /** Peak serial-order sum of room loads at any barrier. */
  double peak_fleet_mw = 0.0;
  double peak_substation_utilization = 0.0;
  std::uint64_t substation_overload_epochs = 0;

  /** Wall time inside the parallel step regions (sum over epochs). */
  double step_wall_seconds = 0.0;
  /** Wall time inside the serial merge barriers (sum over epochs). */
  double merge_wall_seconds = 0.0;
  /** Summed per-room step wall time (lane busy time). */
  double lane_busy_seconds = 0.0;
  /** Barrier cost as a percentage of total epoch wall time. */
  double merge_overhead_pct = 0.0;
  /** lane_busy / (lanes * step_wall): 1.0 = perfectly balanced lanes. */
  double lane_utilization = 0.0;

  /** The final fleet rollup (the rows /metrics sees via the LiveHub). */
  obs::MetricsSnapshot rollup;
};

/**
 * The fleet engine. Construction builds every room serially in room
 * order (placement MILP solves must not run under lane contention —
 * the solve outcome would change and break bit-identity); Run() steps
 * the epochs and returns the merged report. One-shot: construct, Run,
 * discard.
 */
class FleetEmulation {
 public:
  explicit FleetEmulation(FleetConfig config);
  ~FleetEmulation();

  FleetEmulation(const FleetEmulation&) = delete;
  FleetEmulation& operator=(const FleetEmulation&) = delete;

  /** Steps every room to the timeline end and merges the results. */
  FleetReport Run();

  int total_racks() const;
  const RoomEmulation& room(int index) const;

 private:
  /** One epoch: parallel AdvanceTo on every lane, then the barrier. */
  void StepEpoch(Seconds horizon);
  /** Serial merge in room order; everything cross-room happens here. */
  void MergeBarrier();
  /** Builds the fixed-row rollup once; later barriers update in place. */
  void BuildRollup();
  void PublishRollup();
  void RunOnLanes(std::vector<std::function<void()>> tasks);

  FleetConfig config_;
  std::vector<std::unique_ptr<RoomEmulation>> rooms_;
  std::unique_ptr<common::ThreadPool> private_pool_;  // threads >= 2 only

  // Per-room flat state, indexed by room; each slot is written only by
  // its own lane task (stepping) or the serial barrier (merging).
  std::vector<RoomEpochView> views_;
  std::vector<std::uint64_t> epoch_hashes_;
  std::vector<std::uint64_t> epoch_events_;
  std::vector<double> room_busy_seconds_;
  std::vector<std::size_t> alert_consumed_;  ///< merged timeline edges

  FleetReport report_;
  Seconds epoch_horizon_{0.0};  ///< current epoch target (lanes read it)

  // The rollup holds only deterministic simulation state (no wall-clock
  // derived values), so its rows are part of the bit-identity contract;
  // perf accounting lives in FleetReport instead.
  obs::MetricsSnapshot rollup_;
  // Indices into rollup_.rows, fixed once BuildRollup has run.
  struct RollupIndex {
    std::size_t alert_edges = 0;
    std::size_t epochs = 0;
    std::size_t events = 0;
    std::size_t max_ups = 0;
    std::size_t racks_capped = 0;
    std::size_t racks_off = 0;
    std::size_t substation_overload = 0;
    std::size_t substation_utilization = 0;
    std::size_t total_mw = 0;
  };
  RollupIndex idx_;
  bool rollup_built_ = false;
};

}  // namespace flex::emulation

#endif  // FLEX_EMULATION_FLEET_EMULATION_HPP_
