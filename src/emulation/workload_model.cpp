#include "workload_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace flex::emulation {

OuProcess::OuProcess(OuProcessConfig config, double initial)
    : config_(config), value_(initial)
{
  FLEX_REQUIRE(config_.min <= config_.max, "OU bounds must be ordered");
  FLEX_REQUIRE(config_.reversion_rate >= 0.0 && config_.volatility >= 0.0,
               "OU rates must be non-negative");
  value_ = std::clamp(value_, config_.min, config_.max);
}

double
OuProcess::Step(Seconds dt, Rng& rng)
{
  FLEX_REQUIRE(dt.value() >= 0.0, "negative time step");
  const double t = dt.value();
  value_ += config_.reversion_rate * (config_.mean - value_) * t +
            config_.volatility * std::sqrt(t) * rng.Normal();
  value_ = std::clamp(value_, config_.min, config_.max);
  return value_;
}

LatencyModel::LatencyModel(double rho) : rho_(rho)
{
  FLEX_REQUIRE(rho > 0.0 && rho < 1.0, "rho must be in (0, 1)");
}

double
LatencyModel::P95Factor(double speed) const
{
  FLEX_REQUIRE(speed > 0.0 && speed <= 1.0 + 1e-9,
               "speed must be in (0, 1]");
  constexpr double kSaturation = 50.0;  // queue collapse: bounded for math
  if (speed <= rho_)
    return kSaturation;
  return std::min(kSaturation, (1.0 - rho_) / (speed - rho_));
}

double
LatencyModel::SpeedUnderCap(Watts demand, Watts cap)
{
  if (demand <= Watts(0.0) || cap >= demand)
    return 1.0;
  return std::max(0.05, cap / demand);
}

}  // namespace flex::emulation
