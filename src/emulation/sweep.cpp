#include "sweep.hpp"

#include <functional>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/thread_pool.hpp"

namespace flex::emulation {

std::uint64_t
HashEmulationReport(const EmulationReport& report)
{
  Fnv1a hash;
  hash.AddU64(static_cast<std::uint64_t>(report.series.size()));
  for (const EmulationSample& sample : report.series) {
    hash.AddDouble(sample.t_seconds);
    for (const double mw : sample.ups_mw)
      hash.AddDouble(mw);
    hash.AddDouble(sample.total_rack_mw);
    hash.AddI64(sample.racks_off);
    hash.AddI64(sample.racks_capped);
  }
  hash.AddDouble(report.time_to_safe_seconds);
  hash.AddDouble(report.worst_overload_fraction);
  hash.AddI64(report.sr_shutdown_peak);
  hash.AddI64(report.capable_capped_peak);
  hash.AddI64(report.noncap_acted);
  hash.AddI64(report.throttle_commands);
  hash.AddI64(report.shutdown_commands);
  return hash.value();
}

SweepResult
RunEmulationSweep(const SweepConfig& config)
{
  FLEX_REQUIRE(config.variants >= 1, "sweep needs at least one variant");
  FLEX_REQUIRE(config.threads >= 0, "negative thread count");

  SweepResult result;
  result.reports.resize(static_cast<std::size_t>(config.variants));

  // Build every room serially, in seed order: construction runs the
  // wall-clock-budgeted Flex-Offline placement (and may lean on the
  // shared solver pool), so building under lane contention would change
  // the placement and break bit-identity. Only the event loops — pure
  // simulated-time computation over private state — fan out.
  std::vector<std::unique_ptr<RoomEmulation>> rooms;
  rooms.reserve(static_cast<std::size_t>(config.variants));
  for (int v = 0; v < config.variants; ++v) {
    EmulationConfig lane_config = config.base;
    lane_config.seed = config.base.seed + static_cast<std::uint64_t>(v);
    lane_config.obs = nullptr;  // the registry is single-threaded
    // config.base.live / .watchdog deliberately stay shared across
    // lanes: LiveHub is a thread-safe last-writer-wins mailbox and each
    // lane registers its own watchdog heartbeat, so concurrent lanes
    // publish without coordinating — and without perturbing each other.
    rooms.push_back(std::make_unique<RoomEmulation>(std::move(lane_config)));
  }

  const auto run_variant = [&result, &rooms](int variant) {
    result.reports[static_cast<std::size_t>(variant)] =
        rooms[static_cast<std::size_t>(variant)]->Run();
  };

  if (config.threads == 1 || config.variants == 1) {
    result.lanes = 1;
    for (int v = 0; v < config.variants; ++v)
      run_variant(v);
  } else {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(static_cast<std::size_t>(config.variants));
    for (int v = 0; v < config.variants; ++v)
      tasks.push_back([&run_variant, v] { run_variant(v); });
    if (config.threads == 0) {
      common::ThreadPool& pool = common::ThreadPool::Shared();
      result.lanes = pool.size();
      pool.Run(std::move(tasks));
    } else {
      common::ThreadPool pool(config.threads);
      result.lanes = pool.size();
      pool.Run(std::move(tasks));
    }
  }

  // Serial merge in seed order: the fingerprint is a pure function of
  // the reports, never of lane scheduling.
  Fnv1a hash;
  for (const EmulationReport& report : result.reports)
    hash.AddU64(HashEmulationReport(report));
  result.sample_hash = hash.value();
  return result;
}

}  // namespace flex::emulation
