#include "fleet_emulation.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/thread_pool.hpp"
#include "obs/http_export.hpp"

namespace flex::emulation {

namespace {

double
WallSeconds(std::chrono::steady_clock::time_point start)
{
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

FleetEmulation::FleetEmulation(FleetConfig config) : config_(std::move(config))
{
  FLEX_REQUIRE(config_.rooms >= 1, "fleet needs at least one room");
  FLEX_REQUIRE(config_.threads >= 0, "negative thread count");
  FLEX_REQUIRE(config_.epoch.value() > 0.0, "epoch length must be positive");

  const auto n = static_cast<std::size_t>(config_.rooms);
  // Build every room serially, in room order: construction runs the
  // wall-clock-budgeted Flex-Offline placement (and may lean on the
  // shared solver pool), so building under lane contention would change
  // the placement and break bit-identity — the same discipline as the
  // sweep harness. Only the event loops fan out.
  rooms_.reserve(n);
  for (int r = 0; r < config_.rooms; ++r) {
    EmulationConfig room_config = config_.room;
    room_config.seed = config_.room.seed + static_cast<std::uint64_t>(r);
    room_config.obs = nullptr;  // the registry is single-threaded
    // live / watchdog deliberately stay shared across lanes: LiveHub is
    // a thread-safe last-writer-wins mailbox and each room registers
    // its own watchdog heartbeat.
    rooms_.push_back(std::make_unique<RoomEmulation>(std::move(room_config)));
    rooms_.back()->StartTimeline();
  }

  if (config_.threads >= 2)
    private_pool_ = std::make_unique<common::ThreadPool>(config_.threads);
  if (config_.threads == 1 || config_.rooms == 1)
    report_.lanes = 1;
  else if (private_pool_)
    report_.lanes = private_pool_->size();
  else
    report_.lanes = common::ThreadPool::Shared().size();

  views_.resize(n);
  epoch_hashes_.assign(n, 0);
  epoch_events_.assign(n, 0);
  room_busy_seconds_.assign(n, 0.0);
  alert_consumed_.assign(n, 0);
  report_.rooms.resize(n);
  for (const auto& room : rooms_)
    report_.total_racks += room->total_racks();
}

FleetEmulation::~FleetEmulation() = default;

int
FleetEmulation::total_racks() const
{
  return report_.total_racks;
}

const RoomEmulation&
FleetEmulation::room(int index) const
{
  return *rooms_.at(static_cast<std::size_t>(index));
}

void
FleetEmulation::RunOnLanes(std::vector<std::function<void()>> tasks)
{
  if (config_.threads == 1 || tasks.size() == 1) {
    for (auto& task : tasks)
      task();
    return;
  }
  if (private_pool_ != nullptr) {
    private_pool_->Run(std::move(tasks));
    return;
  }
  common::ThreadPool::Shared().Run(std::move(tasks));
}

void
FleetEmulation::StepEpoch(Seconds horizon)
{
  epoch_horizon_ = horizon;
  // [this, r] captures fit std::function's small-object buffer, so the
  // per-epoch cost is one O(rooms) task vector — the lanes themselves
  // step without allocating (the rooms pre-reserved their series).
  std::vector<std::function<void()>> tasks;
  tasks.reserve(rooms_.size());
  for (int r = 0; r < config_.rooms; ++r) {
    tasks.push_back([this, r] {
      const auto start = std::chrono::steady_clock::now();
      const auto i = static_cast<std::size_t>(r);
      epoch_events_[i] = rooms_[i]->AdvanceTo(epoch_horizon_);
      room_busy_seconds_[i] += WallSeconds(start);
    });
  }
  const auto step_start = std::chrono::steady_clock::now();
  RunOnLanes(std::move(tasks));
  report_.step_wall_seconds += WallSeconds(step_start);

  const auto merge_start = std::chrono::steady_clock::now();
  MergeBarrier();
  report_.merge_wall_seconds += WallSeconds(merge_start);
}

void
FleetEmulation::MergeBarrier()
{
  // Everything cross-room happens here, single-threaded, in room index
  // order — the merged outputs are pure functions of the epoch-end
  // states, never of lane scheduling.
  double total_mw = 0.0;
  double max_ups_fraction = 0.0;
  std::uint64_t events = 0;
  std::uint64_t racks_off = 0;
  std::uint64_t racks_capped = 0;
  for (std::size_t r = 0; r < rooms_.size(); ++r) {
    const RoomEmulation& room = *rooms_[r];
    RoomEpochView& view = views_[r];
    room.SnapshotEpoch(&view);

    // Chain this epoch's state into the room's lane-identity hash.
    Fnv1a h;
    h.AddU64(epoch_hashes_[r]);
    h.AddDouble(view.t_seconds);
    h.AddDouble(view.total_rack_mw);
    h.AddDouble(view.max_ups_load_fraction);
    h.AddU64(view.events_executed);
    h.AddI64(view.racks_off);
    h.AddI64(view.racks_capped);
    h.AddU64(view.safety_violated ? 1 : 0);
    h.AddU64(view.battery_tripped ? 1 : 0);
    h.AddU64(view.samples_recorded);
    h.AddU64(view.alert_edges);
    h.AddU64(view.alerts_fired);
    epoch_hashes_[r] = h.value();

    total_mw += view.total_rack_mw;
    max_ups_fraction = std::max(max_ups_fraction, view.max_ups_load_fraction);
    events += view.events_executed;
    racks_off += static_cast<std::uint64_t>(view.racks_off);
    racks_capped += static_cast<std::uint64_t>(view.racks_capped);

    // Consume alert edges appended since the previous barrier. Within a
    // room the engine's timeline is time-ordered; visiting rooms in
    // index order makes the fleet timeline epoch-major, room-major,
    // time-minor — the same sequence at any lane count.
    if (const obs::AlertEngine* engine = room.alert_engine()) {
      const std::vector<obs::AlertTransition>& timeline = engine->timeline();
      for (std::size_t e = alert_consumed_[r]; e < timeline.size(); ++e)
        report_.alert_timeline.push_back({static_cast<int>(r), timeline[e]});
      alert_consumed_[r] = timeline.size();
    }
  }
  ++report_.epochs;
  report_.peak_fleet_mw = std::max(report_.peak_fleet_mw, total_mw);

  // Shared-feed verdict from the serial-order sum; fed back to each
  // room as a purely observational gauge (never read by control).
  power::SubstationStatus substation =
      power::EvaluateSubstation(config_.substation, MegaWatts(total_mw));
  if (config_.substation.enabled()) {
    report_.peak_substation_utilization = std::max(
        report_.peak_substation_utilization, substation.utilization);
    if (substation.overloaded)
      ++report_.substation_overload_epochs;
    for (const auto& room : rooms_)
      room->SetFleetOverloadGauge(substation.overload_fraction);
  }

  if (!rollup_built_)
    BuildRollup();
  rollup_.sim_time_seconds = epoch_horizon_.value();
  rollup_.rows[idx_.alert_edges].value =
      static_cast<double>(report_.alert_timeline.size());
  rollup_.rows[idx_.epochs].value = static_cast<double>(report_.epochs);
  rollup_.rows[idx_.events].value = static_cast<double>(events);
  rollup_.rows[idx_.max_ups].value = max_ups_fraction;
  rollup_.rows[idx_.racks_capped].value = static_cast<double>(racks_capped);
  rollup_.rows[idx_.racks_off].value = static_cast<double>(racks_off);
  rollup_.rows[idx_.substation_overload].value = substation.overload_fraction;
  rollup_.rows[idx_.substation_utilization].value = substation.utilization;
  rollup_.rows[idx_.total_mw].value = total_mw;
  PublishRollup();
}

void
FleetEmulation::BuildRollup()
{
  obs::MetricsSnapshotBuilder builder;
  builder.Counter("fleet.alert_edges", 0.0);
  builder.Counter("fleet.epochs", 0.0);
  builder.Counter("fleet.events_executed", 0.0);
  builder.Gauge("fleet.max_ups_load_fraction", 0.0);
  builder.Gauge("fleet.racks_capped", 0.0);
  builder.Gauge("fleet.racks_off", 0.0);
  builder.Gauge("fleet.rooms", static_cast<double>(config_.rooms));
  builder.Gauge("fleet.substation_overload_fraction", 0.0);
  builder.Gauge("fleet.substation_utilization", 0.0);
  builder.Gauge("fleet.total_rack_mw", 0.0);
  builder.Gauge("fleet.total_racks",
                static_cast<double>(report_.total_racks));
  builder.Build(0.0, &rollup_);

  const auto index_of = [this](const char* name) {
    for (std::size_t i = 0; i < rollup_.rows.size(); ++i) {
      if (rollup_.rows[i].name == name)
        return i;
    }
    FLEX_CHECK_MSG(false, "fleet rollup row missing");
    return std::size_t{0};
  };
  idx_.alert_edges = index_of("fleet.alert_edges");
  idx_.epochs = index_of("fleet.epochs");
  idx_.events = index_of("fleet.events_executed");
  idx_.max_ups = index_of("fleet.max_ups_load_fraction");
  idx_.racks_capped = index_of("fleet.racks_capped");
  idx_.racks_off = index_of("fleet.racks_off");
  idx_.substation_overload =
      index_of("fleet.substation_overload_fraction");
  idx_.substation_utilization = index_of("fleet.substation_utilization");
  idx_.total_mw = index_of("fleet.total_rack_mw");
  rollup_built_ = true;
}

void
FleetEmulation::PublishRollup()
{
  if (config_.live != nullptr)
    config_.live->PublishMetrics(rollup_);
}

FleetReport
FleetEmulation::Run()
{
  const Seconds end = config_.room.end_at;
  Seconds t(0.0);
  while (t < end) {
    t = std::min(Seconds(t.value() + config_.epoch.value()), end);
    StepEpoch(t);
  }

  // Finish is lane-local (drain the delivery tail, assemble the
  // report), so it fans out like an epoch step; the hashes below merge
  // serially afterwards.
  std::vector<std::function<void()>> tasks;
  tasks.reserve(rooms_.size());
  for (int r = 0; r < config_.rooms; ++r) {
    tasks.push_back([this, r] {
      const auto i = static_cast<std::size_t>(r);
      report_.rooms[i].report = rooms_[i]->Finish();
    });
  }
  RunOnLanes(std::move(tasks));

  Fnv1a fleet_hash;
  for (std::size_t r = 0; r < rooms_.size(); ++r) {
    FleetRoomResult& room = report_.rooms[r];
    room.report_hash = HashEmulationReport(room.report);
    room.epoch_hash = epoch_hashes_[r];
    fleet_hash.AddU64(room.epoch_hash);
    fleet_hash.AddU64(room.report_hash);
    report_.events_executed += room.report.events_executed;
  }
  report_.fleet_hash = fleet_hash.value();

  Fnv1a alert_hash;
  for (const FleetAlertEdge& edge : report_.alert_timeline) {
    alert_hash.AddI64(edge.room);
    alert_hash.AddDouble(edge.edge.t);
    alert_hash.AddString(edge.edge.rule);
    alert_hash.AddI64(static_cast<int>(edge.edge.from));
    alert_hash.AddI64(static_cast<int>(edge.edge.to));
    alert_hash.AddDouble(edge.edge.value);
  }
  report_.alert_fingerprint = alert_hash.value();

  for (const double busy : room_busy_seconds_)
    report_.lane_busy_seconds += busy;
  const double total_wall =
      report_.step_wall_seconds + report_.merge_wall_seconds;
  if (total_wall > 0.0)
    report_.merge_overhead_pct = 100.0 * report_.merge_wall_seconds /
                                 total_wall;
  if (report_.lanes > 0 && report_.step_wall_seconds > 0.0) {
    report_.lane_utilization =
        report_.lane_busy_seconds /
        (static_cast<double>(report_.lanes) * report_.step_wall_seconds);
  }
  report_.rollup = rollup_;
  return std::move(report_);
}

}  // namespace flex::emulation
