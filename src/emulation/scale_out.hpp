/**
 * @file
 * Software-redundant service continuity: scale-out to another AZ.
 *
 * Paper Sections II-B and IV-D: software-redundant services are
 * replicated across availability zones and "can tolerate server
 * failures in one AZ by service-healing or scaling-out in another";
 * when Flex shuts their racks down it notifies them so they scale out
 * remotely *instead of* auto-recovering locally (which would fight the
 * controller). This model tracks a service's aggregate serving capacity
 * through an emergency: local racks drop instantly, remote capacity
 * spins up after a delay, and everything drains back when the all-clear
 * arrives.
 */
#ifndef FLEX_EMULATION_SCALE_OUT_HPP_
#define FLEX_EMULATION_SCALE_OUT_HPP_

#include <set>
#include <string>

#include "online/notifications.hpp"
#include "sim/event_queue.hpp"

namespace flex::emulation {

/** Behaviour of one software-redundant service's scale-out plane. */
struct ScaleOutConfig {
  std::string workload = "terasort";
  /** Racks the service runs locally (its nominal capacity). */
  int local_racks = 0;
  /** Time to spin up replacement capacity in the other AZ. */
  Seconds spin_up_delay = Seconds(90.0);
  /** Fraction of lost capacity the remote AZ can absorb (>= 1 = all). */
  double remote_headroom_fraction = 1.0;
  /** Local boot time after the all-clear restores the racks. */
  Seconds local_recovery_delay = Seconds(45.0);
};

/**
 * One service's reaction to Flex power emergencies.
 */
class ScaleOutModel {
 public:
  ScaleOutModel(sim::EventQueue& queue, ScaleOutConfig config);

  /** Wire to a NotificationBus: bus.Subscribe(workload, callback). */
  void OnNotification(const online::PowerEmergencyNotification& n);

  /**
   * The service's own health checker noticed rack @p rack_id down. If
   * no emergency notification covers it, the service would try to
   * auto-recover it locally — exactly the instability the notification
   * exists to prevent; such attempts are counted, not performed.
   */
  void ObserveRackDown(int rack_id);

  /** Serving capacity right now, as a fraction of nominal. */
  double ServiceCapacityFraction() const;

  /** Racks currently administratively down due to the emergency. */
  int local_down() const { return static_cast<int>(down_racks_.size()); }

  /** Remote capacity currently active (rack-equivalents). */
  int remote_active() const { return remote_active_; }

  /** Auto-recovery attempts that would have happened unnotified. */
  int inhibited_auto_recoveries() const { return attempted_restarts_; }
  bool emergency_active() const { return emergency_active_; }

 private:
  sim::EventQueue& queue_;
  ScaleOutConfig config_;
  std::set<int> down_racks_;       // covered by an active emergency
  int remote_active_ = 0;
  int remote_target_ = 0;
  bool emergency_active_ = false;
  int attempted_restarts_ = 0;
  std::uint64_t generation_ = 0;   // invalidates stale scheduled events
};

}  // namespace flex::emulation

#endif  // FLEX_EMULATION_SCALE_OUT_HPP_
