#include "room_emulation.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "offline/flex_offline.hpp"
#include "power/loads.hpp"

namespace flex::emulation {

using power::PduPairId;
using power::UpsId;
using telemetry::DeviceId;
using telemetry::DeviceKind;
using workload::Category;

/** Runtime state of one emulated rack. */
struct RoomEmulation::EmulatedRack {
  offline::Rack info;
  OuProcess utilization;
  /** Time-integral of the p95 latency factor over the failover window
      (latency-sensitive racks only). */
  double latency_factor_integral = 0.0;
  double latency_window_seconds = 0.0;
  double worst_latency_factor = 1.0;
  bool was_throttled = false;

  EmulatedRack(offline::Rack rack, OuProcess process)
      : info(std::move(rack)), utilization(std::move(process))
  {
  }
};

RoomEmulation::RoomEmulation(EmulationConfig config)
    : config_(config), topology_(config.room), rng_(config.seed)
{
  FLEX_REQUIRE(config_.target_utilization > 0.0 &&
                   config_.target_utilization <= 1.0,
               "target utilization must be in (0, 1]");
  FLEX_REQUIRE(config_.failover_at < config_.restore_at &&
                   config_.restore_at < config_.end_at,
               "timeline must be ordered: failover < restore < end");
  FLEX_REQUIRE(config_.failed_ups >= 0 &&
                   config_.failed_ups < topology_.NumUpses(),
               "failed UPS out of range");
  if (config_.obs != nullptr) {
    config_.obs->BindClock(queue_);
    config_.pipeline.obs = config_.obs;
    config_.rack_manager.obs = config_.obs;
    config_.controller.obs = config_.obs;
    notifications_.Bind(config_.obs);
  }
  BuildRoom();
}

RoomEmulation::~RoomEmulation() = default;

void
RoomEmulation::BuildRoom()
{
  // One workload per category (paper Section V-C): TeraSort-like batch
  // work is software-redundant; the TPC-E-like transactional benchmark
  // plays both the cap-able and the non-cap-able roles.
  const int total_slots = topology_.NumRows() * topology_.RacksPerRow();
  const Watts per_rack =
      topology_.TotalProvisionedPower() / static_cast<double>(total_slots);
  const int racks_per_deployment = topology_.RacksPerRow();
  const int num_deployments = total_slots / racks_per_deployment;

  std::vector<workload::Deployment> trace;
  for (int i = 0; i < num_deployments; ++i) {
    workload::Deployment d;
    d.id = i;
    d.num_racks = racks_per_deployment;
    d.power_per_rack = per_rack;
    const double fraction =
        (static_cast<double>(i) + 0.5) / static_cast<double>(num_deployments);
    if (fraction < 0.13) {
      d.category = Category::kSoftwareRedundant;
      d.workload = "terasort";
      d.flex_power_fraction = 0.0;
    } else if (fraction < 0.13 + 0.56) {
      d.category = Category::kNonRedundantCapable;
      d.workload = "tpce-capable";
      d.flex_power_fraction = config_.flex_power_fraction;
    } else {
      d.category = Category::kNonRedundantNonCapable;
      d.workload = "tpce-noncap";
      d.flex_power_fraction = 1.0;
    }
    trace.push_back(std::move(d));
  }
  // Interleave categories so batches see a mix (the generator above laid
  // them out contiguously).
  rng_.Shuffle(trace);
  for (std::size_t i = 0; i < trace.size(); ++i)
    trace[i].id = static_cast<int>(i);

  offline::FlexOfflinePolicy policy = offline::FlexOfflinePolicy::Short(2.0);
  placement_ = policy.Place(topology_, trace);
  layout_ = offline::BuildRackLayout(topology_, placement_);
  FLEX_CHECK_MSG(!layout_.empty(), "placement produced no racks");

  // Scale per-rack utilization so the aggregate hits the target at the
  // UPS level even though some deployments were rejected.
  Watts placed(0.0);
  for (const offline::Rack& rack : layout_)
    placed += rack.allocated;
  const double rack_mean = std::min(
      0.92, config_.target_utilization *
                (topology_.TotalProvisionedPower() / placed));

  racks_.reserve(layout_.size());
  for (const offline::Rack& rack : layout_) {
    OuProcessConfig ou;
    ou.mean = rack_mean;
    ou.reversion_rate = 0.05;
    ou.volatility = rack.category == Category::kSoftwareRedundant
                        ? 0.015   // batch work: steady
                        : 0.025;  // transactional: burstier
    ou.min = 0.40;
    ou.max = 0.95;
    const double initial = rng_.TruncatedNormal(rack_mean, 0.08, ou.min, ou.max);
    racks_.emplace_back(rack, OuProcess(ou, initial));
  }

  report_.total_racks = static_cast<int>(racks_.size());
  for (const EmulatedRack& rack : racks_) {
    switch (rack.info.category) {
      case Category::kSoftwareRedundant:
        ++report_.sr_racks;
        break;
      case Category::kNonRedundantCapable:
        ++report_.capable_racks;
        break;
      case Category::kNonRedundantNonCapable:
        ++report_.noncap_racks;
        break;
    }
  }

  plane_ = std::make_unique<actuation::ActuationPlane>(
      queue_, report_.total_racks, config_.rack_manager, rng_.NextU64());
  pipeline_ = std::make_unique<telemetry::TelemetryPipeline>(
      queue_, *this, topology_.NumUpses(), report_.total_racks,
      config_.pipeline, rng_.NextU64());

  // Impact registry from the configured scenario.
  online::ImpactRegistry impact;
  impact.emplace("terasort", config_.scenario.software_redundant);
  impact.emplace("tpce-capable", config_.scenario.capable);

  std::vector<online::ManagedRack> managed;
  for (const EmulatedRack& rack : racks_) {
    online::ManagedRack m;
    m.rack_id = rack.info.id;
    m.workload = rack.info.workload;
    m.category = rack.info.category;
    m.pdu_pair = rack.info.pdu_pair;
    m.allocated = rack.info.allocated;
    m.flex_power = rack.info.allocated * config_.flex_power_fraction;
    managed.push_back(std::move(m));
  }
  // Software-redundant service continuity: the TeraSort-like workload
  // subscribes to power-emergency notifications and scales out remotely.
  if (report_.sr_racks > 0) {
    ScaleOutConfig scale_out;
    scale_out.workload = "terasort";
    scale_out.local_racks = report_.sr_racks;
    sr_scale_out_ = std::make_unique<ScaleOutModel>(queue_, scale_out);
    ScaleOutModel* model = sr_scale_out_.get();
    notifications_.Subscribe(
        "terasort", [model](const online::PowerEmergencyNotification& n) {
          model->OnNotification(n);
        });
  }

  for (int c = 0; c < config_.num_controllers; ++c) {
    controllers_.push_back(std::make_unique<online::FlexController>(
        queue_, topology_, managed, *plane_, impact, config_.controller, c,
        &notifications_));
    online::FlexController* controller = controllers_.back().get();
    pipeline_->Subscribe([controller](const telemetry::DeviceReading& r) {
      controller->OnReading(r);
    });
  }

  overload_since_.assign(static_cast<std::size_t>(topology_.NumUpses()),
                         -1.0);
  for (UpsId u = 0; u < topology_.NumUpses(); ++u) {
    batteries_.emplace_back(power::BatteryConfig::ForBatteryLife(
        config_.room.battery_life, topology_.UpsCapacity(u)));
    batteries_.back().Bind(config_.obs, u);
  }
}

Watts
RoomEmulation::TrueRackPower(int rack_id) const
{
  const EmulatedRack& rack = racks_[static_cast<std::size_t>(rack_id)];
  const actuation::RackState& state = plane_->rack(rack_id).state();
  if (!state.powered_on)
    return Watts(0.0);
  const double ramp =
      0.35 + 0.65 * std::min(1.0, queue_.Now() / config_.setup_duration);
  Watts demand = rack.info.allocated * rack.utilization.value() * ramp;
  if (state.power_cap && demand > *state.power_cap)
    demand = *state.power_cap;
  return demand;
}

std::vector<Watts>
RoomEmulation::TrueUpsLoads() const
{
  power::PduPairLoads pdu_loads(
      static_cast<std::size_t>(topology_.NumPduPairs()), Watts(0.0));
  for (const EmulatedRack& rack : racks_) {
    pdu_loads[static_cast<std::size_t>(rack.info.pdu_pair)] +=
        TrueRackPower(rack.info.id);
  }
  if (failed_ups_ >= 0)
    return power::FailoverUpsLoads(topology_, pdu_loads, failed_ups_);
  return power::NormalUpsLoads(topology_, pdu_loads);
}

Watts
RoomEmulation::CurrentPower(DeviceId device) const
{
  if (device.kind == DeviceKind::kRack)
    return TrueRackPower(device.index);
  return TrueUpsLoads()[static_cast<std::size_t>(device.index)];
}

void
RoomEmulation::StepWorkloads()
{
  // Batteries ride through whatever overload the current loads impose.
  const std::vector<Watts> ups_loads = TrueUpsLoads();
  for (UpsId u = 0; u < topology_.NumUpses(); ++u) {
    power::BatteryModel& battery = batteries_[static_cast<std::size_t>(u)];
    battery.Advance(ups_loads[static_cast<std::size_t>(u)],
                    config_.workload_step);
    report_.min_battery_state_of_charge = std::min(
        report_.min_battery_state_of_charge, battery.StateOfCharge());
    if (battery.tripped()) {
      if (!report_.battery_tripped && config_.obs != nullptr) {
        config_.obs->recorder().Record(queue_.Now(),
                                       obs::RecordKind::kBatteryTrip,
                                       static_cast<int>(u), -1,
                                       battery.StateOfCharge());
      }
      report_.battery_tripped = true;
    }
  }

  // Software-redundant service health view: shut racks look "down" to
  // the service's own health checks; notified shutdowns are tolerated,
  // unnotified ones would trigger auto-recovery (counted, inhibited).
  if (sr_scale_out_) {
    for (const EmulatedRack& rack : racks_) {
      if (rack.info.category == Category::kSoftwareRedundant &&
          !plane_->rack(rack.info.id).state().powered_on)
        sr_scale_out_->ObserveRackDown(rack.info.id);
    }
    report_.sr_capacity_min_fraction =
        std::min(report_.sr_capacity_min_fraction,
                 sr_scale_out_->ServiceCapacityFraction());
    if (sr_scale_out_->emergency_active() &&
        sr_scale_out_->remote_active() > 0) {
      report_.sr_capacity_after_scaleout =
          sr_scale_out_->ServiceCapacityFraction();
    }
  }

  const bool in_failover_window =
      queue_.Now() >= config_.failover_at && queue_.Now() < config_.restore_at;
  const LatencyModel latency(0.25);
  for (EmulatedRack& rack : racks_) {
    rack.utilization.Step(config_.workload_step, rng_);
    if (rack.info.category != Category::kNonRedundantCapable)
      continue;
    // Track tail latency of the transactional racks while the failover
    // episode is in progress.
    if (!in_failover_window)
      continue;
    const actuation::RackState& state = plane_->rack(rack.info.id).state();
    const double ramp = 1.0;  // setup finished well before failover
    const Watts demand = rack.info.allocated * rack.utilization.value() * ramp;
    double factor = 1.0;
    if (state.power_cap) {
      rack.was_throttled = true;
      factor = latency.P95Factor(LatencyModel::SpeedUnderCap(
          demand, *state.power_cap));
    }
    rack.latency_factor_integral += factor * config_.workload_step.value();
    rack.latency_window_seconds += config_.workload_step.value();
    rack.worst_latency_factor = std::max(rack.worst_latency_factor, factor);
  }
}

void
RoomEmulation::RecordSample()
{
  EmulationSample sample;
  sample.t_seconds = queue_.Now().value();
  const std::vector<Watts> ups = TrueUpsLoads();
  for (const Watts w : ups)
    sample.ups_mw.push_back(w.megawatts());
  for (const EmulatedRack& rack : racks_)
    sample.total_rack_mw += TrueRackPower(rack.info.id).megawatts();
  int off = 0;
  int capped = 0;
  for (const EmulatedRack& rack : racks_) {
    const actuation::RackState& state = plane_->rack(rack.info.id).state();
    if (!state.powered_on)
      ++off;
    else if (state.power_cap)
      ++capped;
  }
  sample.racks_off = off;
  sample.racks_capped = capped;
  report_.series.push_back(std::move(sample));

  // Safety bookkeeping: time spent above rated capacity vs. tolerance.
  for (UpsId u = 0; u < topology_.NumUpses(); ++u) {
    const double fraction = ups[static_cast<std::size_t>(u)] /
                            topology_.UpsCapacity(u);
    double& since = overload_since_[static_cast<std::size_t>(u)];
    if (fraction > 1.0) {
      report_.worst_overload_fraction =
          std::max(report_.worst_overload_fraction, fraction);
      if (since < 0.0)
        since = queue_.Now().value();
      const double duration = queue_.Now().value() - since;
      report_.overload_duration_seconds =
          std::max(report_.overload_duration_seconds, duration);
      if (topology_.trip_curve().Exceeds(fraction, Seconds(duration)))
        report_.safety_violated = true;
    } else {
      since = -1.0;
    }
  }
}

EmulationReport
RoomEmulation::Run()
{
  pipeline_->Start();

  // Workload stepping.
  sim::SchedulePeriodic(queue_, config_.workload_step, [this] {
    StepWorkloads();
    return queue_.Now() < config_.end_at;
  });
  // Sampling.
  sim::SchedulePeriodic(queue_, config_.sample_period, [this] {
    RecordSample();
    return queue_.Now() < config_.end_at;
  });
  // Stage C: fail a UPS.
  queue_.ScheduleAt(config_.failover_at, [this] {
    failed_ups_ = config_.failed_ups;
  });
  // Stage F: restore it.
  queue_.ScheduleAt(config_.restore_at, [this] { failed_ups_ = -1; });

  double time_to_safe = -1.0;
  sim::SchedulePeriodic(queue_, Seconds(0.5), [this, &time_to_safe] {
    if (queue_.Now() < config_.failover_at)
      return true;
    if (time_to_safe >= 0.0)
      return false;
    const std::vector<Watts> ups = TrueUpsLoads();
    bool safe = true;
    for (UpsId u = 0; u < topology_.NumUpses(); ++u) {
      if (ups[static_cast<std::size_t>(u)] > topology_.UpsCapacity(u))
        safe = false;
    }
    if (safe && queue_.Now() > config_.failover_at) {
      time_to_safe = (queue_.Now() - config_.failover_at).value();
      return false;
    }
    return true;
  });

  // Track peak action counts during the episode.
  sim::SchedulePeriodic(queue_, Seconds(1.0), [this] {
    int off = 0;
    int capped = 0;
    int noncap_acted = 0;
    for (const EmulatedRack& rack : racks_) {
      const actuation::RackState& state = plane_->rack(rack.info.id).state();
      const bool acted = !state.powered_on || state.power_cap.has_value();
      if (!state.powered_on)
        ++off;
      else if (state.power_cap)
        ++capped;
      if (acted &&
          rack.info.category == Category::kNonRedundantNonCapable)
        ++noncap_acted;
    }
    report_.sr_shutdown_peak = std::max(report_.sr_shutdown_peak, off);
    report_.capable_capped_peak =
        std::max(report_.capable_capped_peak, capped);
    report_.noncap_acted = std::max(report_.noncap_acted, noncap_acted);
    return queue_.Now() < config_.end_at;
  });

  queue_.RunUntil(config_.end_at);
  pipeline_->Stop();
  queue_.RunUntil(config_.end_at + Seconds(5.0));  // drain deliveries

  // --- Assemble the report -------------------------------------------------
  report_.time_to_safe_seconds = time_to_safe;
  if (report_.sr_racks > 0) {
    report_.sr_shutdown_fraction =
        static_cast<double>(report_.sr_shutdown_peak) / report_.sr_racks;
  }
  if (report_.capable_racks > 0) {
    report_.capable_capped_fraction =
        static_cast<double>(report_.capable_capped_peak) /
        report_.capable_racks;
  }
  if (!pipeline_->latency_samples().empty()) {
    report_.data_latency_p999 =
        Percentile(pipeline_->latency_samples(), 99.9);
  }
  for (const auto& controller : controllers_) {
    const online::ControllerStats& stats = controller->stats();
    report_.overdraw_events += stats.overdraw_events;
    report_.throttle_commands += stats.throttle_commands;
    report_.shutdown_commands += stats.shutdown_commands;
    for (const double latency : stats.enforcement_latencies) {
      report_.enforcement_latency_seconds =
          std::max(report_.enforcement_latency_seconds, latency);
    }
  }

  RunningStats latency_increase;
  for (const EmulatedRack& rack : racks_) {
    if (!rack.was_throttled || rack.latency_window_seconds <= 0.0)
      continue;
    const double mean_factor =
        rack.latency_factor_integral / rack.latency_window_seconds;
    latency_increase.Add(mean_factor - 1.0);
    report_.p95_increase_worst = std::max(
        report_.p95_increase_worst, rack.worst_latency_factor - 1.0);
  }
  report_.p95_increase_mean = latency_increase.mean();
  if (sr_scale_out_) {
    report_.sr_inhibited_auto_recoveries =
        sr_scale_out_->inhibited_auto_recoveries();
  }
  report_.notifications_published =
      static_cast<int>(notifications_.published_count());
  return report_;
}

}  // namespace flex::emulation
