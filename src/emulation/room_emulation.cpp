#include "room_emulation.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "obs/forensics.hpp"
#include "obs/log.hpp"
#include "obs/http_export.hpp"
#include "obs/profiler.hpp"
#include "offline/flex_offline.hpp"
#include "power/loads.hpp"

namespace flex::emulation {

using power::PduPairId;
using power::UpsId;
using telemetry::DeviceId;
using telemetry::DeviceKind;
using workload::Category;

RoomEmulation::RoomEmulation(EmulationConfig config)
    : config_(config),
      topology_(config.room),
      queue_(config.queue_impl),
      rng_(config.seed),
      agg_(topology_)
{
  FLEX_REQUIRE(config_.target_utilization > 0.0 &&
                   config_.target_utilization <= 1.0,
               "target utilization must be in (0, 1]");
  FLEX_REQUIRE(config_.failover_at < config_.restore_at &&
                   config_.restore_at < config_.end_at,
               "timeline must be ordered: failover < restore < end");
  FLEX_REQUIRE(config_.failed_ups >= 0 &&
                   config_.failed_ups < topology_.NumUpses(),
               "failed UPS out of range");
  if (config_.obs != nullptr) {
    config_.obs->BindClock(queue_);
    config_.pipeline.obs = config_.obs;
    config_.rack_manager.obs = config_.obs;
    config_.controller.obs = config_.obs;
    notifications_.Bind(config_.obs);
  }
  BuildRoom();
  // Register with the watchdog only after BuildRoom: the placement
  // solve is a legitimately long silent phase, not a stall.
  if (config_.watchdog != nullptr) {
    watchdog_id_ = config_.watchdog->RegisterThread(
        "emulation-seed-" + std::to_string(config_.seed));
  }
  if (config_.alerts.enabled) {
    ts_store_ = std::make_unique<obs::TimeSeriesStore>(config_.alerts.store);
    std::vector<obs::AlertRule> rules = config_.alerts.rules;
    if (rules.empty())
      rules = obs::BuiltinAlertRules();
    alert_engine_ =
        std::make_unique<obs::AlertEngine>(ts_store_.get(), std::move(rules));
    if (config_.obs != nullptr)
      alert_engine_->SetRecorder(&config_.obs->recorder());
    if (!config_.alerts.forensics_root.empty()) {
      alert_engine_->SetNotifier([this](const obs::AlertTransition& edge,
                                        const obs::AlertStatus& status) {
        if (edge.to == obs::AlertState::kFiring)
          DumpAlertBundle(status, edge);
      });
    }
  }
}

RoomEmulation::~RoomEmulation() = default;

void
RoomEmulation::BuildRoom()
{
  // One workload per category (paper Section V-C): TeraSort-like batch
  // work is software-redundant; the TPC-E-like transactional benchmark
  // plays both the cap-able and the non-cap-able roles.
  const int total_slots = topology_.NumRows() * topology_.RacksPerRow();
  const Watts per_rack =
      topology_.TotalProvisionedPower() / static_cast<double>(total_slots);
  const int racks_per_deployment = topology_.RacksPerRow();
  const int num_deployments = total_slots / racks_per_deployment;

  std::vector<workload::Deployment> trace;
  for (int i = 0; i < num_deployments; ++i) {
    workload::Deployment d;
    d.id = i;
    d.num_racks = racks_per_deployment;
    d.power_per_rack = per_rack;
    const double fraction =
        (static_cast<double>(i) + 0.5) / static_cast<double>(num_deployments);
    if (fraction < 0.13) {
      d.category = Category::kSoftwareRedundant;
      d.workload = "terasort";
      d.flex_power_fraction = 0.0;
    } else if (fraction < 0.13 + 0.56) {
      d.category = Category::kNonRedundantCapable;
      d.workload = "tpce-capable";
      d.flex_power_fraction = config_.flex_power_fraction;
    } else {
      d.category = Category::kNonRedundantNonCapable;
      d.workload = "tpce-noncap";
      d.flex_power_fraction = 1.0;
    }
    trace.push_back(std::move(d));
  }
  // Interleave categories so batches see a mix (the generator above laid
  // them out contiguously).
  rng_.Shuffle(trace);
  for (std::size_t i = 0; i < trace.size(); ++i)
    trace[i].id = static_cast<int>(i);

  offline::FlexOfflinePolicy policy = offline::FlexOfflinePolicy::Short(
      config_.placement_solve_seconds, config_.placement_max_nodes,
      config_.solver_live);
  placement_ = policy.Place(topology_, trace);
  layout_ = offline::BuildRackLayout(topology_, placement_);
  FLEX_CHECK_MSG(!layout_.empty(), "placement produced no racks");

  // Scale per-rack utilization so the aggregate hits the target at the
  // UPS level even though some deployments were rejected.
  Watts placed(0.0);
  for (const offline::Rack& rack : layout_)
    placed += rack.allocated;
  const double rack_mean = std::min(
      0.92, config_.target_utilization *
                (topology_.TotalProvisionedPower() / placed));

  // Structure-of-arrays rack state: one flat vector per field, indexed
  // by rack id (the placement emits ids sequentially; assert it so the
  // flat indexing can never silently misattribute power).
  const std::size_t n = layout_.size();
  rack_util_.reserve(n);
  rack_alloc_w_.reserve(n);
  rack_pdu_.reserve(n);
  rack_category_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const offline::Rack& rack = layout_[i];
    FLEX_REQUIRE(rack.id == static_cast<int>(i),
                 "rack layout ids must be dense and sequential");
    OuProcessConfig ou;
    ou.mean = rack_mean;
    ou.reversion_rate = 0.05;
    ou.volatility = rack.category == Category::kSoftwareRedundant
                        ? 0.015   // batch work: steady
                        : 0.025;  // transactional: burstier
    ou.min = 0.40;
    ou.max = 0.95;
    const double initial = rng_.TruncatedNormal(rack_mean, 0.08, ou.min, ou.max);
    rack_util_.emplace_back(ou, initial);
    rack_alloc_w_.push_back(rack.allocated.value());
    rack_pdu_.push_back(rack.pdu_pair);
    rack_category_.push_back(rack.category);
    switch (rack.category) {
      case Category::kSoftwareRedundant:
        ++report_.sr_racks;
        sr_rack_ids_.push_back(rack.id);
        break;
      case Category::kNonRedundantCapable:
        ++report_.capable_racks;
        capable_rack_ids_.push_back(rack.id);
        break;
      case Category::kNonRedundantNonCapable:
        ++report_.noncap_racks;
        break;
    }
  }
  report_.total_racks = static_cast<int>(n);
  rack_power_w_.assign(n, 0.0);
  rack_on_.assign(n, 1);
  rack_cap_w_.assign(n, -1.0);
  latency_factor_integral_.assign(n, 0.0);
  latency_window_seconds_.assign(n, 0.0);
  worst_latency_factor_.assign(n, 1.0);
  was_throttled_.assign(n, 0);

  plane_ = std::make_unique<actuation::ActuationPlane>(
      queue_, report_.total_racks, config_.rack_manager, rng_.NextU64());
  plane_->SetStateListener(
      [this](int rack_id) { OnRackStateChanged(rack_id); });
  pipeline_ = std::make_unique<telemetry::TelemetryPipeline>(
      queue_, *this, topology_.NumUpses(), report_.total_racks,
      config_.pipeline, rng_.NextU64());

  // Poll racks grouped by their PDU pair's primary UPS so each tick
  // walks one electrical domain at a time (batches keyed by UPS). The
  // incremental engine publishes one batch per UPS group — finer event
  // granularity, identical delivered readings; the baseline flag keeps
  // the pre-incremental structure of one room-sized batch per tick.
  {
    std::vector<std::vector<int>> racks_of_pdu(
        static_cast<std::size_t>(topology_.NumPduPairs()));
    for (std::size_t i = 0; i < n; ++i)
      racks_of_pdu[static_cast<std::size_t>(rack_pdu_[i])].push_back(
          static_cast<int>(i));
    std::vector<std::vector<int>> groups(
        static_cast<std::size_t>(topology_.NumUpses()));
    for (UpsId u = 0; u < topology_.NumUpses(); ++u) {
      for (const PduPairId p : topology_.PduPairsOfUps(u)) {
        if (topology_.UpsesOfPduPair(p).first != u)
          continue;  // each pair is emitted once, under its primary UPS
        const auto& racks = racks_of_pdu[static_cast<std::size_t>(p)];
        auto& group = groups[static_cast<std::size_t>(u)];
        group.insert(group.end(), racks.begin(), racks.end());
      }
    }
    if (config_.incremental_aggregation) {
      pipeline_->SetRackPollGroups(std::move(groups));
    } else {
      std::vector<int> order;
      order.reserve(n);
      for (const std::vector<int>& group : groups)
        order.insert(order.end(), group.begin(), group.end());
      pipeline_->SetRackPollOrder(std::move(order));
    }
  }

  // Seed the aggregates with the initial rack powers (everything on,
  // uncapped, ramp at t = 0).
  if (config_.incremental_aggregation)
    RebuildAggregates();

  // Impact registry from the configured scenario.
  online::ImpactRegistry impact;
  impact.emplace("terasort", config_.scenario.software_redundant);
  impact.emplace("tpce-capable", config_.scenario.capable);

  std::vector<online::ManagedRack> managed;
  for (const offline::Rack& rack : layout_) {
    online::ManagedRack m;
    m.rack_id = rack.id;
    m.workload = rack.workload;
    m.category = rack.category;
    m.pdu_pair = rack.pdu_pair;
    m.allocated = rack.allocated;
    m.flex_power = rack.allocated * config_.flex_power_fraction;
    managed.push_back(std::move(m));
  }
  // Software-redundant service continuity: the TeraSort-like workload
  // subscribes to power-emergency notifications and scales out remotely.
  if (report_.sr_racks > 0) {
    ScaleOutConfig scale_out;
    scale_out.workload = "terasort";
    scale_out.local_racks = report_.sr_racks;
    sr_scale_out_ = std::make_unique<ScaleOutModel>(queue_, scale_out);
    ScaleOutModel* model = sr_scale_out_.get();
    notifications_.Subscribe(
        "terasort", [model](const online::PowerEmergencyNotification& n) {
          model->OnNotification(n);
        });
  }

  for (int c = 0; c < config_.num_controllers; ++c) {
    controllers_.push_back(std::make_unique<online::FlexController>(
        queue_, topology_, managed, *plane_, impact, config_.controller, c,
        &notifications_));
    online::FlexController* controller = controllers_.back().get();
    pipeline_->Subscribe([controller](const telemetry::DeviceReading& r) {
      controller->OnReading(r);
    });
  }

  overload_since_.assign(static_cast<std::size_t>(topology_.NumUpses()),
                         -1.0);
  for (UpsId u = 0; u < topology_.NumUpses(); ++u) {
    batteries_.emplace_back(power::BatteryConfig::ForBatteryLife(
        config_.room.battery_life, topology_.UpsCapacity(u)));
    batteries_.back().Bind(config_.obs, u);
  }
}

double
RoomEmulation::RampNow() const
{
  return 0.35 + 0.65 * std::min(1.0, queue_.Now() / config_.setup_duration);
}

double
RoomEmulation::ComputeRackPowerW(int rack_id, double ramp) const
{
  const auto i = static_cast<std::size_t>(rack_id);
  if (!rack_on_[i])
    return 0.0;
  double demand = rack_alloc_w_[i] * rack_util_[i].value() * ramp;
  const double cap = rack_cap_w_[i];
  if (cap >= 0.0 && demand > cap)
    demand = cap;
  return demand;
}

Watts
RoomEmulation::TrueRackPower(int rack_id) const
{
  const auto i = static_cast<std::size_t>(rack_id);
  const actuation::RackState& state = plane_->rack(rack_id).state();
  if (!state.powered_on)
    return Watts(0.0);
  Watts demand(rack_alloc_w_[i] * rack_util_[i].value() * RampNow());
  if (state.power_cap && demand > *state.power_cap)
    demand = *state.power_cap;
  return demand;
}

std::vector<Watts>
RoomEmulation::TrueUpsLoads() const
{
  power::PduPairLoads pdu_loads(
      static_cast<std::size_t>(topology_.NumPduPairs()), Watts(0.0));
  for (int id = 0; id < report_.total_racks; ++id) {
    pdu_loads[static_cast<std::size_t>(rack_pdu_[static_cast<std::size_t>(
        id)])] += TrueRackPower(id);
  }
  if (failed_ups_ >= 0)
    return power::FailoverUpsLoads(topology_, pdu_loads, failed_ups_);
  return power::NormalUpsLoads(topology_, pdu_loads);
}

std::vector<Watts>
RoomEmulation::UpsLoadsNow() const
{
  if (config_.incremental_aggregation)
    return agg_.UpsLoads();
  return TrueUpsLoads();
}

void
RoomEmulation::RebuildAggregates()
{
  // Fresh left-to-right rack-order sums: identical summation order to a
  // brute-force rescan, so the running state starts each workload step
  // drift-free. O(racks), amortized against the utilization step that
  // already touched every rack.
  const double ramp = RampNow();
  pdu_scratch_.assign(static_cast<std::size_t>(topology_.NumPduPairs()),
                      Watts(0.0));
  for (std::size_t i = 0; i < rack_power_w_.size(); ++i) {
    const double p = ComputeRackPowerW(static_cast<int>(i), ramp);
    rack_power_w_[i] = p;
    pdu_scratch_[static_cast<std::size_t>(rack_pdu_[i])] += Watts(p);
  }
  agg_.SetAllPduLoads(pdu_scratch_);
}

void
RoomEmulation::OnRackStateChanged(int rack_id)
{
  const auto i = static_cast<std::size_t>(rack_id);
  const actuation::RackState& state = plane_->rack(rack_id).state();
  const bool was_on = rack_on_[i] != 0;
  const bool had_cap = rack_cap_w_[i] >= 0.0;
  const bool now_on = state.powered_on;
  const bool now_capped = state.power_cap.has_value();

  off_count_ += static_cast<int>(!now_on) - static_cast<int>(!was_on);
  capped_count_ += static_cast<int>(now_on && now_capped) -
                   static_cast<int>(was_on && had_cap);
  if (rack_category_[i] == Category::kNonRedundantNonCapable) {
    noncap_acted_count_ += static_cast<int>(!now_on || now_capped) -
                           static_cast<int>(!was_on || had_cap);
  }
  rack_on_[i] = now_on ? 1 : 0;
  rack_cap_w_[i] = now_capped ? state.power_cap->value() : -1.0;

  if (!config_.incremental_aggregation)
    return;
  // The rack's electrical draw just changed: apply the delta to the
  // running sums instead of rescanning the room.
  const double p = ComputeRackPowerW(rack_id, RampNow());
  const double delta = p - rack_power_w_[i];
  rack_power_w_[i] = p;
  if (delta != 0.0)
    agg_.ApplyDelta(rack_pdu_[i], Watts(delta));
}

void
RoomEmulation::VerifyAggregates()
{
  // Exact rescan cross-check: rebuild the PDU sums from the cached rack
  // powers and diff the resulting UPS loads against the running sums.
  // Tolerance covers only FP reordering drift between resyncs — a logic
  // bug (missed delta, stale mirror) shows up orders of magnitude above
  // it.
  FLEX_CHECK_MSG(agg_.failed_ups() == failed_ups_,
                 "aggregation failover mode out of sync");
  power::PduPairLoads exact(
      static_cast<std::size_t>(topology_.NumPduPairs()), Watts(0.0));
  for (std::size_t i = 0; i < rack_power_w_.size(); ++i)
    exact[static_cast<std::size_t>(rack_pdu_[i])] += Watts(rack_power_w_[i]);
  const std::vector<Watts> ups_exact =
      failed_ups_ >= 0 ? power::FailoverUpsLoads(topology_, exact, failed_ups_)
                       : power::NormalUpsLoads(topology_, exact);
  const double tolerance =
      1e-3 + 1e-9 * std::abs(agg_.TotalLoad().value());
  const std::vector<Watts>& running = agg_.UpsLoads();
  for (std::size_t u = 0; u < ups_exact.size(); ++u) {
    FLEX_CHECK_MSG(
        std::abs(running[u].value() - ups_exact[u].value()) <= tolerance,
        "incremental UPS aggregation diverged from exact rescan");
  }
  ++verify_rescans_;
}

Watts
RoomEmulation::CurrentPower(DeviceId device) const
{
  if (device.kind == DeviceKind::kRack) {
    if (config_.incremental_aggregation)
      return Watts(rack_power_w_[static_cast<std::size_t>(device.index)]);
    return TrueRackPower(device.index);
  }
  if (config_.incremental_aggregation)
    return agg_.UpsLoads()[static_cast<std::size_t>(device.index)];
  return TrueUpsLoads()[static_cast<std::size_t>(device.index)];
}

void
RoomEmulation::CurrentPowerBatch(DeviceKind kind,
                                 std::vector<Watts>& out) const
{
  if (!config_.incremental_aggregation) {
    // Baseline path: per-device answers, i.e. one full rack scan per UPS
    // device per tick — the pre-incremental cost model the room-scale
    // bench measures against.
    PowerSource::CurrentPowerBatch(kind, out);
    return;
  }
  if (kind == DeviceKind::kUps) {
    const std::vector<Watts>& loads = agg_.UpsLoads();
    for (std::size_t u = 0; u < out.size(); ++u)
      out[u] = loads[u];
    return;
  }
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = Watts(rack_power_w_[i]);
}

void
RoomEmulation::StepWorkloads()
{
  FLEX_PROFILE_PHASE("emulation.step");
  // Batteries ride through whatever overload the current loads impose.
  const std::vector<Watts> ups_loads = UpsLoadsNow();
  for (UpsId u = 0; u < topology_.NumUpses(); ++u) {
    power::BatteryModel& battery = batteries_[static_cast<std::size_t>(u)];
    battery.Advance(ups_loads[static_cast<std::size_t>(u)],
                    config_.workload_step);
    report_.min_battery_state_of_charge = std::min(
        report_.min_battery_state_of_charge, battery.StateOfCharge());
    if (battery.tripped()) {
      if (!report_.battery_tripped && config_.obs != nullptr) {
        config_.obs->recorder().Record(queue_.Now(),
                                       obs::RecordKind::kBatteryTrip,
                                       static_cast<int>(u), -1,
                                       battery.StateOfCharge());
      }
      report_.battery_tripped = true;
    }
  }

  // Software-redundant service health view: shut racks look "down" to
  // the service's own health checks; notified shutdowns are tolerated,
  // unnotified ones would trigger auto-recovery (counted, inhibited).
  if (sr_scale_out_) {
    for (const int id : sr_rack_ids_) {
      if (!rack_on_[static_cast<std::size_t>(id)])
        sr_scale_out_->ObserveRackDown(id);
    }
    report_.sr_capacity_min_fraction =
        std::min(report_.sr_capacity_min_fraction,
                 sr_scale_out_->ServiceCapacityFraction());
    if (sr_scale_out_->emergency_active() &&
        sr_scale_out_->remote_active() > 0) {
      report_.sr_capacity_after_scaleout =
          sr_scale_out_->ServiceCapacityFraction();
    }
  }

  // Advance every utilization in rack order — the RNG draw order is part
  // of the deterministic contract, so this loop stays separate from the
  // category-specific bookkeeping below.
  for (OuProcess& util : rack_util_)
    util.Step(config_.workload_step, rng_);

  // Every rack's demand just changed; refresh the cached powers and the
  // aggregates with one exact pass (also bounds delta rounding drift).
  if (config_.incremental_aggregation)
    RebuildAggregates();

  const bool in_failover_window =
      queue_.Now() >= config_.failover_at && queue_.Now() < config_.restore_at;
  if (!in_failover_window)
    return;
  // Track tail latency of the transactional racks while the failover
  // episode is in progress.
  const LatencyModel latency(0.25);
  for (const int id : capable_rack_ids_) {
    const auto i = static_cast<std::size_t>(id);
    const double cap = rack_cap_w_[i];
    const double ramp = 1.0;  // setup finished well before failover
    const Watts demand(rack_alloc_w_[i] * rack_util_[i].value() * ramp);
    double factor = 1.0;
    if (cap >= 0.0) {
      was_throttled_[i] = 1;
      factor = latency.P95Factor(LatencyModel::SpeedUnderCap(
          demand, Watts(cap)));
    }
    latency_factor_integral_[i] += factor * config_.workload_step.value();
    latency_window_seconds_[i] += config_.workload_step.value();
    worst_latency_factor_[i] = std::max(worst_latency_factor_[i], factor);
  }
}

void
RoomEmulation::RecordSample()
{
  EmulationSample sample;
  sample.t_seconds = queue_.Now().value();
  const std::vector<Watts> ups = UpsLoadsNow();
  for (const Watts w : ups)
    sample.ups_mw.push_back(w.megawatts());
  if (config_.incremental_aggregation) {
    sample.total_rack_mw = agg_.TotalLoad().megawatts();
    sample.racks_off = off_count_;
    sample.racks_capped = capped_count_;
    if (config_.verify_aggregation)
      VerifyAggregates();
  } else {
    for (int id = 0; id < report_.total_racks; ++id)
      sample.total_rack_mw += TrueRackPower(id).megawatts();
    int off = 0;
    int capped = 0;
    for (int id = 0; id < report_.total_racks; ++id) {
      const actuation::RackState& state = plane_->rack(id).state();
      if (!state.powered_on)
        ++off;
      else if (state.power_cap)
        ++capped;
    }
    sample.racks_off = off;
    sample.racks_capped = capped;
  }
  report_.series.push_back(std::move(sample));

  // Without a dedicated monitor, safety tracking rides the sample tick.
  if (config_.monitor_period.value() <= 0.0)
    MonitorTick(ups);

  max_ups_load_fraction_ = 0.0;
  for (UpsId u = 0; u < topology_.NumUpses(); ++u) {
    max_ups_load_fraction_ = std::max(
        max_ups_load_fraction_,
        ups[static_cast<std::size_t>(u)] / topology_.UpsCapacity(u));
  }

  // One snapshot per tick feeds both the history store and the live
  // plane, so /query and /metrics can never disagree about a sample.
  const obs::MetricsSnapshot snapshot = BuildLiveSnapshot();
  if (ts_store_ != nullptr) {
    ts_store_->Sample(snapshot);
    alert_engine_->Evaluate(queue_.Now().value());
  }
  PublishLive(snapshot);
}

obs::MetricsSnapshot
RoomEmulation::BuildLiveSnapshot()
{
  if (config_.obs != nullptr) {
    obs::MetricsRegistry& metrics = config_.obs->metrics();
    obs::UpdateLogMetrics(metrics);
    metrics.gauge("emulation.max_ups_load_fraction")
        .Set(max_ups_load_fraction_);
    if (fleet_overload_fraction_ >= 0.0) {
      metrics.gauge("fleet.substation_overload_fraction")
          .Set(fleet_overload_fraction_);
    }
    if (config_.watchdog != nullptr) {
      metrics.gauge("watchdog.stall_events")
          .Set(static_cast<double>(config_.watchdog->stall_events()));
    }
    if (config_.solver_live != nullptr) {
      const solver::LiveSolverStats& s = *config_.solver_live;
      const auto set = [&metrics](const char* name, std::int64_t value) {
        metrics.gauge(name).Set(static_cast<double>(value));
      };
      set("solver.live.basis_reuse_attempts",
          s.basis_reuse_attempts.load(std::memory_order_relaxed));
      set("solver.live.basis_reuse_hits",
          s.basis_reuse_hits.load(std::memory_order_relaxed));
      set("solver.live.dual_pivots",
          s.dual_pivots.load(std::memory_order_relaxed));
      set("solver.live.lp_solves",
          s.lp_solves.load(std::memory_order_relaxed));
      set("solver.live.nodes_explored",
          s.nodes_explored.load(std::memory_order_relaxed));
      set("solver.live.open_nodes",
          s.open_nodes.load(std::memory_order_relaxed));
      set("solver.live.warm_dual_restarts",
          s.warm_dual_restarts.load(std::memory_order_relaxed));
      set("solver.live.waves", s.waves.load(std::memory_order_relaxed));
    }
    return metrics.Snapshot();
  }

  // Sweep lanes run without a registry (it is single-threaded and
  // lane-local); synthesize the minimum so /metrics and the history
  // store still track the run. Row names stay sorted — the
  // MetricsSnapshot contract.
  obs::MetricsSnapshot snapshot;
  snapshot.sim_time_seconds = queue_.Now().value();
  const auto push = [&snapshot](const char* name, obs::MetricKind kind,
                                double value) {
    obs::MetricRow row;
    row.name = name;
    row.kind = kind;
    row.value = value;
    snapshot.rows.push_back(std::move(row));
  };
  const auto gauge = [&push](const char* name, double value) {
    push(name, obs::MetricKind::kGauge, value);
  };
  gauge("emulation.events_executed",
        static_cast<double>(queue_.executed_count()));
  gauge("emulation.max_ups_load_fraction", max_ups_load_fraction_);
  if (!report_.series.empty()) {
    const EmulationSample& last = report_.series.back();
    gauge("emulation.racks_off", static_cast<double>(last.racks_off));
    gauge("emulation.total_rack_mw", last.total_rack_mw);
  }
  // Fleet lanes learn the shared-substation overload at each epoch
  // barrier; standalone rooms never set it, so their snapshots are
  // unchanged. "emulation.*" < "fleet.*" < "pipeline.*" keeps the rows
  // sorted.
  if (fleet_overload_fraction_ >= 0.0)
    gauge("fleet.substation_overload_fraction", fleet_overload_fraction_);
  push("pipeline.readings_delivered", obs::MetricKind::kCounter,
       static_cast<double>(pipeline_->delivered_count()));
  if (config_.solver_live != nullptr) {
    const solver::LiveSolverStats& s = *config_.solver_live;
    const auto live_gauge = [&gauge](const char* name,
                                     const std::atomic<std::int64_t>& v) {
      gauge(name, static_cast<double>(v.load(std::memory_order_relaxed)));
    };
    live_gauge("solver.live.basis_reuse_attempts", s.basis_reuse_attempts);
    live_gauge("solver.live.basis_reuse_hits", s.basis_reuse_hits);
    live_gauge("solver.live.dual_pivots", s.dual_pivots);
    live_gauge("solver.live.lp_solves", s.lp_solves);
    live_gauge("solver.live.nodes_explored", s.nodes_explored);
    live_gauge("solver.live.open_nodes", s.open_nodes);
    live_gauge("solver.live.warm_dual_restarts", s.warm_dual_restarts);
    live_gauge("solver.live.waves", s.waves);
  }
  if (config_.watchdog != nullptr) {
    gauge("watchdog.stall_events",
          static_cast<double>(config_.watchdog->stall_events()));
  }
  return snapshot;
}

void
RoomEmulation::DumpAlertBundle(const obs::AlertStatus& status,
                               const obs::AlertTransition& edge)
{
  // One bundle per run: the first firing edge is the interesting one;
  // later edges of the same episode would only overwrite fresher state
  // on top of the evidence.
  if (alert_bundle_written_)
    return;
  alert_bundle_written_ = true;

  obs::BundleSpec spec;
  spec.trigger = "alert-firing";
  spec.scenario = "emulation";
  spec.seed = static_cast<std::uint64_t>(config_.seed);
  spec.sim_time_s = queue_.Now().value();
  spec.horizon_s = config_.end_at.value();
  spec.replayable = false;  // emulation dumps are for triage, not replay
  if (config_.obs != nullptr) {
    spec.records = config_.obs->recorder().Records();
    spec.metrics = &config_.obs->metrics();
    spec.tracer = &config_.obs->tracer();
  }
  spec.timeseries_jsonl = ts_store_->ToJsonl();
  spec.alerts_jsonl = alert_engine_->TimelineJsonl();
  spec.notes.push_back(std::string("alert fired: ") + status.rule.name +
                       " (" + obs::AlertSeverityName(status.rule.severity) +
                       "): " + edge.message);
  const std::string dir = obs::UniqueBundleDir(
      config_.alerts.forensics_root,
      "alert-" + status.rule.name + "-seed-" + std::to_string(config_.seed));
  std::string error;
  if (!obs::WriteForensicBundle(dir, spec, &error)) {
    FLEX_LOG(obs::LogLevel::kWarn, "emulation",
             "alert forensic dump failed: %s", error.c_str());
  } else {
    FLEX_LOG(obs::LogLevel::kInfo, "emulation",
             "alert forensic bundle written to %s", dir.c_str());
  }
}

void
RoomEmulation::PublishLive(const obs::MetricsSnapshot& snapshot)
{
  if (config_.watchdog != nullptr && watchdog_id_ >= 0)
    config_.watchdog->Beat(watchdog_id_);
  if (config_.live == nullptr)
    return;

  // Everything below copies simulation state OUT into the hub's
  // mutex-guarded mailbox; the HTTP thread only ever reads those
  // copies. Nothing here feeds back into simulated state, so a scraper
  // (or the absence of one) cannot change the run.
  obs::LiveHub& live = *config_.live;
  live.PublishMetrics(snapshot);
  if (config_.obs != nullptr) {
    live.PublishTraces(config_.obs->tracer().traces());
    live.PublishRecorderTail(config_.obs->recorder());
  }
  if (alert_engine_ != nullptr) {
    obs::AlertsSnapshot alerts = alert_engine_->Snapshot();
    alerts.sim_time_seconds = queue_.Now().value();
    live.PublishAlerts(alerts);
    live.PublishSeries(ts_store_->Snapshot());
  }

  obs::HealthSnapshot health;
  health.ok = !report_.safety_violated && !report_.battery_tripped;
  health.sim_time_seconds = queue_.Now().value();
  if (!health.ok) {
    health.violations = 1;
    health.detail = report_.safety_violated
                        ? "UPS overload exceeded its trip-curve tolerance"
                        : "UPS battery exhausted its ride-through energy";
  }
  live.PublishHealth(health);
}

void
RoomEmulation::MonitorTick(const std::vector<Watts>& ups)
{
  // Safety bookkeeping: time spent above rated capacity vs. tolerance.
  ++report_.monitor_ticks;
  for (UpsId u = 0; u < topology_.NumUpses(); ++u) {
    const double fraction = ups[static_cast<std::size_t>(u)] /
                            topology_.UpsCapacity(u);
    double& since = overload_since_[static_cast<std::size_t>(u)];
    if (fraction > 1.0) {
      report_.worst_overload_fraction =
          std::max(report_.worst_overload_fraction, fraction);
      if (since < 0.0)
        since = queue_.Now().value();
      const double duration = queue_.Now().value() - since;
      report_.overload_duration_seconds =
          std::max(report_.overload_duration_seconds, duration);
      if (topology_.trip_curve().Exceeds(fraction, Seconds(duration)))
        report_.safety_violated = true;
    } else {
      since = -1.0;
    }
  }
}

EmulationReport
RoomEmulation::Run()
{
  StartTimeline();
  AdvanceTo(config_.end_at);
  return Finish();
}

void
RoomEmulation::StartTimeline()
{
  FLEX_REQUIRE(!timeline_started_, "timeline already started");
  timeline_started_ = true;
  pipeline_->Start();

  // Reserve the sample series at its final size so epoch-driven
  // stepping never reallocates mid-run (the fleet engine's
  // zero-allocation steady state rides this).
  report_.series.reserve(
      static_cast<std::size_t>(config_.end_at.value() /
                               config_.sample_period.value()) +
      2);

  // Workload stepping.
  sim::SchedulePeriodic(queue_, config_.workload_step, [this] {
    StepWorkloads();
    return queue_.Now() < config_.end_at;
  });
  // Sampling.
  sim::SchedulePeriodic(queue_, config_.sample_period, [this] {
    RecordSample();
    return queue_.Now() < config_.end_at;
  });
  // Dedicated high-resolution safety monitor: O(UPSes) per tick on the
  // incremental path, O(racks) on the full-rescan baseline.
  if (config_.monitor_period.value() > 0.0) {
    sim::SchedulePeriodic(queue_, config_.monitor_period, [this] {
      MonitorTick(UpsLoadsNow());
      return queue_.Now() < config_.end_at;
    });
  }
  // Stage C: fail a UPS.
  queue_.ScheduleAt(config_.failover_at, [this] {
    failed_ups_ = config_.failed_ups;
    if (config_.incremental_aggregation)
      agg_.SetFailedUps(failed_ups_);
  });
  // Stage F: restore it.
  queue_.ScheduleAt(config_.restore_at, [this] {
    failed_ups_ = -1;
    if (config_.incremental_aggregation)
      agg_.SetFailedUps(-1);
  });
  // Scripted telemetry outage: every poller fails, then recovers. The
  // alerting drill rides this — delivered readings go flat, and the
  // staleness rule must walk pending → firing → resolved.
  if (config_.telemetry_outage_until > config_.telemetry_outage_at &&
      config_.telemetry_outage_at > Seconds(0.0)) {
    queue_.ScheduleAt(config_.telemetry_outage_at, [this] {
      for (int p = 0; p < config_.pipeline.num_pollers; ++p)
        pipeline_->SetPollerFailed(p, true);
    });
    queue_.ScheduleAt(config_.telemetry_outage_until, [this] {
      for (int p = 0; p < config_.pipeline.num_pollers; ++p)
        pipeline_->SetPollerFailed(p, false);
    });
  }

  sim::SchedulePeriodic(queue_, Seconds(0.5), [this] {
    if (queue_.Now() < config_.failover_at)
      return true;
    if (time_to_safe_ >= 0.0)
      return false;
    const std::vector<Watts> ups = UpsLoadsNow();
    bool safe = true;
    for (UpsId u = 0; u < topology_.NumUpses(); ++u) {
      if (ups[static_cast<std::size_t>(u)] > topology_.UpsCapacity(u))
        safe = false;
    }
    if (safe && queue_.Now() > config_.failover_at) {
      time_to_safe_ = (queue_.Now() - config_.failover_at).value();
      return false;
    }
    return true;
  });

  // Track peak action counts during the episode. The incremental path
  // reads the listener-maintained counters; the baseline path rescans.
  sim::SchedulePeriodic(queue_, Seconds(1.0), [this] {
    int off = 0;
    int capped = 0;
    int noncap_acted = 0;
    if (config_.incremental_aggregation) {
      off = off_count_;
      capped = capped_count_;
      noncap_acted = noncap_acted_count_;
    } else {
      for (int id = 0; id < report_.total_racks; ++id) {
        const actuation::RackState& state = plane_->rack(id).state();
        const bool acted = !state.powered_on || state.power_cap.has_value();
        if (!state.powered_on)
          ++off;
        else if (state.power_cap)
          ++capped;
        if (acted && rack_category_[static_cast<std::size_t>(id)] ==
                         Category::kNonRedundantNonCapable)
          ++noncap_acted;
      }
    }
    report_.sr_shutdown_peak = std::max(report_.sr_shutdown_peak, off);
    report_.capable_capped_peak =
        std::max(report_.capable_capped_peak, capped);
    report_.noncap_acted = std::max(report_.noncap_acted, noncap_acted);
    return queue_.Now() < config_.end_at;
  });
}

std::uint64_t
RoomEmulation::AdvanceTo(Seconds horizon)
{
  FLEX_REQUIRE(timeline_started_, "StartTimeline before AdvanceTo");
  if (horizon > config_.end_at)
    horizon = config_.end_at;
  if (horizon < queue_.Now())
    return 0;
  return static_cast<std::uint64_t>(queue_.RunUntil(horizon));
}

void
RoomEmulation::SnapshotEpoch(RoomEpochView* out) const
{
  FLEX_REQUIRE(out != nullptr, "null epoch view");
  out->t_seconds = queue_.Now().value();
  out->total_rack_mw = config_.incremental_aggregation
                           ? agg_.TotalLoad().megawatts()
                           : (report_.series.empty()
                                  ? 0.0
                                  : report_.series.back().total_rack_mw);
  out->max_ups_load_fraction = max_ups_load_fraction_;
  out->events_executed = queue_.executed_count();
  out->racks_off = off_count_;
  out->racks_capped = capped_count_;
  out->safety_violated = report_.safety_violated;
  out->battery_tripped = report_.battery_tripped;
  out->samples_recorded = static_cast<std::uint64_t>(report_.series.size());
  if (alert_engine_ != nullptr) {
    out->alert_edges =
        static_cast<std::uint64_t>(alert_engine_->timeline().size());
    out->alerts_fired = alert_engine_->total_fired();
  } else {
    out->alert_edges = 0;
    out->alerts_fired = 0;
  }
}

void
RoomEmulation::SetFleetOverloadGauge(double overload_fraction)
{
  fleet_overload_fraction_ = overload_fraction;
}

EmulationReport
RoomEmulation::Finish()
{
  FLEX_REQUIRE(timeline_started_, "StartTimeline before Finish");
  FLEX_REQUIRE(queue_.Now() >= config_.end_at,
               "Finish before the timeline end");
  FLEX_REQUIRE(!finished_, "Finish called twice");
  finished_ = true;
  pipeline_->Stop();
  queue_.RunUntil(config_.end_at + Seconds(5.0));  // drain deliveries

  // --- Assemble the report -------------------------------------------------
  report_.time_to_safe_seconds = time_to_safe_;
  if (report_.sr_racks > 0) {
    report_.sr_shutdown_fraction =
        static_cast<double>(report_.sr_shutdown_peak) / report_.sr_racks;
  }
  if (report_.capable_racks > 0) {
    report_.capable_capped_fraction =
        static_cast<double>(report_.capable_capped_peak) /
        report_.capable_racks;
  }
  if (!pipeline_->latency_samples().empty()) {
    report_.data_latency_p999 =
        Percentile(pipeline_->latency_samples(), 99.9);
  }
  for (const auto& controller : controllers_) {
    const online::ControllerStats& stats = controller->stats();
    report_.overdraw_events += stats.overdraw_events;
    report_.throttle_commands += stats.throttle_commands;
    report_.shutdown_commands += stats.shutdown_commands;
    for (const double latency : stats.enforcement_latencies) {
      report_.enforcement_latency_seconds =
          std::max(report_.enforcement_latency_seconds, latency);
    }
  }

  RunningStats latency_increase;
  for (const int id : capable_rack_ids_) {
    const auto i = static_cast<std::size_t>(id);
    if (!was_throttled_[i] || latency_window_seconds_[i] <= 0.0)
      continue;
    const double mean_factor =
        latency_factor_integral_[i] / latency_window_seconds_[i];
    latency_increase.Add(mean_factor - 1.0);
    report_.p95_increase_worst = std::max(
        report_.p95_increase_worst, worst_latency_factor_[i] - 1.0);
  }
  report_.p95_increase_mean = latency_increase.mean();
  if (sr_scale_out_) {
    report_.sr_inhibited_auto_recoveries =
        sr_scale_out_->inhibited_auto_recoveries();
  }
  report_.notifications_published =
      static_cast<int>(notifications_.published_count());

  report_.events_executed = queue_.executed_count();
  report_.aggregate_deltas = agg_.delta_count();
  report_.aggregate_resyncs = agg_.resync_count();
  report_.verify_rescans = verify_rescans_;
  if (config_.obs != nullptr) {
    obs::MetricsRegistry& metrics = config_.obs->metrics();
    metrics.gauge("room.racks").Set(static_cast<double>(report_.total_racks));
    metrics.gauge("room.events_executed")
        .Set(static_cast<double>(report_.events_executed));
    metrics.gauge("room.aggregate_deltas")
        .Set(static_cast<double>(report_.aggregate_deltas));
    metrics.gauge("room.aggregate_resyncs")
        .Set(static_cast<double>(report_.aggregate_resyncs));
    metrics.gauge("room.verify_rescans")
        .Set(static_cast<double>(report_.verify_rescans));
  }
  if (alert_engine_ != nullptr) {
    report_.alerts_fired = alert_engine_->total_fired();
    report_.alert_timeline = alert_engine_->timeline();
    report_.alert_fingerprint = alert_engine_->Fingerprint();
    report_.store_fingerprint = ts_store_->Fingerprint();
    report_.store_samples = ts_store_->total_samples();
  }
  // Final publish with the completed-run state, then retire the
  // heartbeat: a finished loop must not read as a stall on /healthz.
  // BuildLiveSnapshot only reads here — the history store is not
  // re-sampled, so the fingerprints above stay the report's truth.
  PublishLive(BuildLiveSnapshot());
  if (config_.watchdog != nullptr && watchdog_id_ >= 0)
    config_.watchdog->MarkDone(watchdog_id_);
  return report_;
}

}  // namespace flex::emulation
