/**
 * @file
 * Discrete-event simulation kernel.
 *
 * Drives every time-dependent component in the reproduction: meters poll,
 * pub/sub buses deliver, controllers tick, UPS batteries accumulate
 * overload, and workloads vary their power — all as events on a single
 * deterministic queue.
 *
 * Two interchangeable implementations share one observable contract
 * (FIFO at equal timestamps, lazy cancellation, observer order):
 *
 *  - kHeap: the classic binary heap. O(log n) per operation with
 *    std::function-heavy sift moves; robust for any event pattern.
 *  - kCalendar: a two-level calendar queue. Near-future events land in a
 *    fixed wheel of time buckets (O(1) insert, short linear scan per
 *    pop); far-future events overflow into a heap that refills the wheel
 *    whenever it drains. Timer-heavy rooms (thousands of periodic polls
 *    within a few seconds of now) stop paying the per-event log factor.
 */
#ifndef FLEX_SIM_EVENT_QUEUE_HPP_
#define FLEX_SIM_EVENT_QUEUE_HPP_

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/units.hpp"

namespace flex::sim {

/** Handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/** Handle used to remove an installed observer. */
using ObserverId = std::uint64_t;

/**
 * A deterministic discrete-event queue.
 *
 * Events at equal timestamps fire in scheduling order (FIFO), which makes
 * multi-controller races reproducible. Cancellation is lazy: cancelled
 * events stay in their container but are skipped when reached. Both
 * implementations execute any event trace in the same order.
 */
class EventQueue {
 public:
  using Callback = std::function<void()>;
  /** Invoked after every executed event with the event's timestamp. */
  using Observer = std::function<void(Seconds)>;

  /** Backing store for the pending-event set. */
  enum class Impl {
    kCalendar,  // two-level bucket wheel + far-future heap (default)
    kHeap,      // single binary heap
  };

  explicit EventQueue(Impl impl = Impl::kCalendar);

  /** Which backing implementation this queue runs on. */
  Impl impl() const { return impl_; }

  /** Current simulated time. */
  Seconds Now() const { return now_; }

  /**
   * Installs an observer called after each executed event. Observers must
   * not schedule or cancel events (they watch the simulation, they do not
   * steer it); the invariant monitor in src/fault and the metrics layer
   * in src/obs are the main clients. Observers fire in installation
   * order. @return a handle for RemoveObserver().
   */
  ObserverId AddObserver(Observer observer);

  /** Removes an observer; removing a missing handle is a no-op. */
  void RemoveObserver(ObserverId id);

  /**
   * Deprecated single-observer API, kept for older call sites. Replaces
   * the observer installed by the previous SetObserver call (other
   * AddObserver registrations are untouched). Pass an empty function to
   * detach. Prefer AddObserver().
   */
  void SetObserver(Observer observer);

  /** Number of installed observers. */
  std::size_t observer_count() const { return observers_.size(); }

  /** Total events executed over the queue's lifetime. */
  std::uint64_t executed_count() const { return executed_count_; }

  /**
   * Schedules @p callback to run @p delay after the current time.
   * @return an id usable with Cancel().
   */
  EventId Schedule(Seconds delay, Callback callback);

  /** Schedules @p callback at absolute time @p when (>= Now()). */
  EventId ScheduleAt(Seconds when, Callback callback);

  /** Cancels a pending event; cancelling a fired/cancelled id is a no-op. */
  void Cancel(EventId id);

  /** True when no runnable events remain. */
  bool Empty() const { return pending_.empty(); }

  /** Number of pending (non-cancelled) events. */
  std::size_t PendingCount() const { return pending_.size(); }

  /**
   * Runs events until the queue drains or @p horizon is reached, whichever
   * comes first. Time advances to the horizon even if the queue drains
   * earlier, so repeated RunUntil calls tile a timeline predictably:
   * RunUntil(t1); RunUntil(t2) executes the exact event sequence of a
   * single RunUntil(t2). This is the epoch-bounded run API the fleet
   * engine advances its lanes with — each lane tiles its own timeline
   * into fixed epochs and the barriers merge between tiles.
   * @return the number of events executed.
   */
  std::size_t RunUntil(Seconds horizon);

  /**
   * Timestamp of the earliest still-runnable event, or +infinity when
   * none is pending. Purely observational with respect to the event
   * trace (cancelled entries encountered on the way are discarded, which
   * is invisible to execution order), so an epoch driver can poll it
   * between RunUntil tiles to detect drained lanes or skip empty epochs
   * without perturbing determinism.
   */
  Seconds NextEventTime();

  /** Runs a single event if one is pending. @return true if one ran. */
  bool Step();

  /** Runs until the queue is fully drained. @return events executed. */
  std::size_t RunAll();

 private:
  struct Entry {
    Seconds when;
    std::uint64_t sequence;  // tie-break: FIFO at equal timestamps
    EventId id;
    Callback callback;
  };

  struct Later {
    bool
    operator()(const Entry& a, const Entry& b) const
    {
      if (a.when != b.when)
        return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  struct ObserverEntry {
    ObserverId id;
    Observer callback;
  };

  // Calendar geometry. The wheel spans kNumBuckets * kBucketWidth
  // seconds (51.2 s) of simulated time from wheel_start_; everything
  // later waits in far_heap_ until the wheel advances onto it. Bucket
  // width is sized so a room's periodic timers (0.5–5 s periods) spread
  // across many buckets instead of piling into one.
  static constexpr std::size_t kNumBuckets = 1024;
  static constexpr double kBucketWidth = 0.05;

  void Insert(Entry entry);
  /**
   * Pops the earliest live event if its timestamp is <= @p horizon
   * (pass infinity for "any"). Skips and discards cancelled entries on
   * the way. @return false when nothing runnable is within the horizon.
   */
  bool PopEarliest(double horizon, Entry& out);
  bool PopEarliestHeap(double horizon, Entry& out);
  bool PopEarliestCalendar(double horizon, Entry& out);
  /** Earliest live timestamp without executing; +inf when drained. */
  double PeekEarliestHeap();
  double PeekEarliestCalendar();
  /** Moves the wheel onto the earliest far-heap event. @return false if none. */
  bool AdvanceWheel();
  void NotifyObservers(Seconds when);

  Impl impl_;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;  // kHeap store

  // kCalendar store. wheel_entries_ counts entries resident in buckets,
  // live or cancelled (cancelled ones are discovered and dropped during
  // bucket scans). Invariant: far_heap_ holds only events at or beyond
  // wheel_start_ + kNumBuckets * kBucketWidth, re-established each time
  // AdvanceWheel() rebases the wheel. Events scheduled before
  // wheel_start_ (possible right after an advance) clamp into bucket 0,
  // which therefore covers "everything up to wheel_start_ + width" — the
  // min-scan keeps ordering exact regardless.
  std::vector<std::vector<Entry>> buckets_;
  std::priority_queue<Entry, std::vector<Entry>, Later> far_heap_;
  double wheel_start_ = 0.0;
  std::size_t cursor_ = 0;         // first possibly-nonempty bucket
  std::size_t wheel_entries_ = 0;  // entries resident in buckets_

  std::unordered_set<EventId> pending_;  // ids scheduled and not yet fired
  Seconds now_{0.0};
  std::uint64_t next_sequence_ = 0;
  EventId next_id_ = 1;
  std::vector<ObserverEntry> observers_;  // in installation order
  ObserverId next_observer_id_ = 1;
  ObserverId legacy_observer_id_ = 0;  // slot managed by SetObserver()
  std::uint64_t executed_count_ = 0;
};

/**
 * Convenience: schedules @p callback every @p period until it returns
 * false. Returns immediately; the ticking happens as the queue runs.
 */
void SchedulePeriodic(EventQueue& queue, Seconds period,
                      std::function<bool()> callback);

}  // namespace flex::sim

#endif  // FLEX_SIM_EVENT_QUEUE_HPP_
