#include "event_queue.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "common/error.hpp"

namespace flex::sim {

EventQueue::EventQueue(Impl impl) : impl_(impl)
{
  if (impl_ == Impl::kCalendar)
    buckets_.resize(kNumBuckets);
}

EventId
EventQueue::Schedule(Seconds delay, Callback callback)
{
  FLEX_REQUIRE(delay.value() >= 0.0, "cannot schedule in the past");
  return ScheduleAt(now_ + delay, std::move(callback));
}

EventId
EventQueue::ScheduleAt(Seconds when, Callback callback)
{
  FLEX_REQUIRE(when >= now_, "cannot schedule before the current time");
  FLEX_REQUIRE(static_cast<bool>(callback), "null event callback");
  const EventId id = next_id_++;
  Insert(Entry{when, next_sequence_++, id, std::move(callback)});
  pending_.insert(id);
  return id;
}

void
EventQueue::Insert(Entry entry)
{
  if (impl_ == Impl::kHeap) {
    heap_.push(std::move(entry));
    return;
  }
  const double when = entry.when.value();
  const double wheel_end = wheel_start_ + kNumBuckets * kBucketWidth;
  if (when >= wheel_end) {
    far_heap_.push(std::move(entry));
    return;
  }
  // Events before wheel_start_ (scheduled after an advance rebased the
  // wheel onto a later far-heap event) clamp into bucket 0.
  std::size_t idx = 0;
  if (when > wheel_start_) {
    idx = static_cast<std::size_t>((when - wheel_start_) / kBucketWidth);
    if (idx >= kNumBuckets)
      idx = kNumBuckets - 1;  // guard the when ~= wheel_end rounding edge
  }
  buckets_[idx].push_back(std::move(entry));
  ++wheel_entries_;
  if (idx < cursor_)
    cursor_ = idx;  // never let the cursor skip a newly earlier event
}

ObserverId
EventQueue::AddObserver(Observer observer)
{
  FLEX_REQUIRE(static_cast<bool>(observer), "null observer");
  const ObserverId id = next_observer_id_++;
  observers_.push_back(ObserverEntry{id, std::move(observer)});
  return id;
}

void
EventQueue::RemoveObserver(ObserverId id)
{
  observers_.erase(std::remove_if(observers_.begin(), observers_.end(),
                                  [id](const ObserverEntry& entry) {
                                    return entry.id == id;
                                  }),
                   observers_.end());
  if (legacy_observer_id_ == id)
    legacy_observer_id_ = 0;
}

void
EventQueue::SetObserver(Observer observer)
{
  if (legacy_observer_id_ != 0)
    RemoveObserver(legacy_observer_id_);
  if (observer)
    legacy_observer_id_ = AddObserver(std::move(observer));
}

void
EventQueue::NotifyObservers(Seconds when)
{
  // Index loop: an observer may remove itself (or others) mid-dispatch.
  for (std::size_t i = 0; i < observers_.size(); ++i)
    observers_[i].callback(when);
}

void
EventQueue::Cancel(EventId id)
{
  // Lazy cancellation: the entry stays in its container and is skipped
  // when reached because its id is no longer pending.
  pending_.erase(id);
}

bool
EventQueue::PopEarliestHeap(double horizon, Entry& out)
{
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    if (pending_.count(top.id) == 0) {
      heap_.pop();  // cancelled: drop silently
      continue;
    }
    if (top.when.value() > horizon)
      return false;
    out = top;
    heap_.pop();
    pending_.erase(out.id);
    return true;
  }
  return false;
}

bool
EventQueue::AdvanceWheel()
{
  // Prune cancelled events first so the wheel rebases onto a live one.
  while (!far_heap_.empty() && pending_.count(far_heap_.top().id) == 0)
    far_heap_.pop();
  if (far_heap_.empty())
    return false;
  wheel_start_ = far_heap_.top().when.value();
  cursor_ = 0;
  const double wheel_end = wheel_start_ + kNumBuckets * kBucketWidth;
  // Drain everything now inside the wheel window into buckets, keeping
  // the invariant that far_heap_ only holds events at or past wheel_end.
  while (!far_heap_.empty() && far_heap_.top().when.value() < wheel_end) {
    Entry entry = far_heap_.top();
    far_heap_.pop();
    if (pending_.count(entry.id) == 0)
      continue;
    Insert(std::move(entry));
  }
  return true;
}

bool
EventQueue::PopEarliestCalendar(double horizon, Entry& out)
{
  for (;;) {
    while (wheel_entries_ > 0 && cursor_ < kNumBuckets) {
      std::vector<Entry>& bucket = buckets_[cursor_];
      // One pass: drop cancelled entries, track the live (when, seq) min.
      std::size_t best = bucket.size();
      std::size_t write = 0;
      for (std::size_t read = 0; read < bucket.size(); ++read) {
        if (pending_.count(bucket[read].id) == 0) {
          --wheel_entries_;
          continue;  // cancelled: compact it away
        }
        if (write != read)
          bucket[write] = std::move(bucket[read]);
        if (best == bucket.size() ||
            bucket[write].when < bucket[best].when ||
            (bucket[write].when == bucket[best].when &&
             bucket[write].sequence < bucket[best].sequence))
          best = write;
        ++write;
      }
      bucket.resize(write);
      if (bucket.empty()) {
        ++cursor_;
        continue;
      }
      if (bucket[best].when.value() > horizon)
        return false;  // earliest wheel event is beyond the horizon
      out = std::move(bucket[best]);
      bucket[best] = std::move(bucket.back());
      bucket.pop_back();
      --wheel_entries_;
      pending_.erase(out.id);
      return true;
    }
    // Wheel exhausted (only tombstones may remain in passed buckets).
    if (!AdvanceWheel())
      return false;
  }
}

bool
EventQueue::PopEarliest(double horizon, Entry& out)
{
  return impl_ == Impl::kHeap ? PopEarliestHeap(horizon, out)
                              : PopEarliestCalendar(horizon, out);
}

double
EventQueue::PeekEarliestHeap()
{
  while (!heap_.empty() && pending_.count(heap_.top().id) == 0)
    heap_.pop();  // cancelled: drop silently, same as the pop path
  if (heap_.empty())
    return std::numeric_limits<double>::infinity();
  return heap_.top().when.value();
}

double
EventQueue::PeekEarliestCalendar()
{
  // Mirrors PopEarliestCalendar's scan — compact cancelled entries,
  // advance the cursor over drained buckets, rebase the wheel from the
  // far heap — but leaves the winning entry in place.
  for (;;) {
    while (wheel_entries_ > 0 && cursor_ < kNumBuckets) {
      std::vector<Entry>& bucket = buckets_[cursor_];
      std::size_t best = bucket.size();
      std::size_t write = 0;
      for (std::size_t read = 0; read < bucket.size(); ++read) {
        if (pending_.count(bucket[read].id) == 0) {
          --wheel_entries_;
          continue;  // cancelled: compact it away
        }
        if (write != read)
          bucket[write] = std::move(bucket[read]);
        if (best == bucket.size() ||
            bucket[write].when < bucket[best].when)
          best = write;
        ++write;
      }
      bucket.resize(write);
      if (bucket.empty()) {
        ++cursor_;
        continue;
      }
      return bucket[best].when.value();
    }
    // Wheel exhausted (only tombstones may remain in passed buckets).
    if (!AdvanceWheel())
      return std::numeric_limits<double>::infinity();
  }
}

Seconds
EventQueue::NextEventTime()
{
  return Seconds(impl_ == Impl::kHeap ? PeekEarliestHeap()
                                      : PeekEarliestCalendar());
}

std::size_t
EventQueue::RunUntil(Seconds horizon)
{
  FLEX_REQUIRE(horizon >= now_, "horizon is in the past");
  std::size_t executed = 0;
  Entry entry;
  while (PopEarliest(horizon.value(), entry)) {
    now_ = entry.when;
    entry.callback();
    ++executed;
    ++executed_count_;
    NotifyObservers(now_);
  }
  now_ = horizon;
  return executed;
}

bool
EventQueue::Step()
{
  Entry entry;
  if (!PopEarliest(std::numeric_limits<double>::infinity(), entry))
    return false;
  now_ = entry.when;
  entry.callback();
  ++executed_count_;
  NotifyObservers(now_);
  return true;
}

std::size_t
EventQueue::RunAll()
{
  std::size_t executed = 0;
  while (Step())
    ++executed;
  return executed;
}

void
SchedulePeriodic(EventQueue& queue, Seconds period,
                 std::function<bool()> callback)
{
  FLEX_REQUIRE(period.value() > 0.0, "periodic events need positive period");
  // Self-rescheduling wrapper; stops when the callback returns false.
  struct Ticker {
    EventQueue* queue;
    Seconds period;
    std::function<bool()> callback;

    void
    Run(const std::shared_ptr<Ticker>& self)
    {
      if (callback())
        queue->Schedule(period, [self] { self->Run(self); });
    }
  };
  auto ticker =
      std::make_shared<Ticker>(Ticker{&queue, period, std::move(callback)});
  queue.Schedule(period, [ticker] { ticker->Run(ticker); });
}

}  // namespace flex::sim
