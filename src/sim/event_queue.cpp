#include "event_queue.hpp"

#include <algorithm>
#include <memory>

#include "common/error.hpp"

namespace flex::sim {

EventId
EventQueue::Schedule(Seconds delay, Callback callback)
{
  FLEX_REQUIRE(delay.value() >= 0.0, "cannot schedule in the past");
  return ScheduleAt(now_ + delay, std::move(callback));
}

EventId
EventQueue::ScheduleAt(Seconds when, Callback callback)
{
  FLEX_REQUIRE(when >= now_, "cannot schedule before the current time");
  FLEX_REQUIRE(static_cast<bool>(callback), "null event callback");
  const EventId id = next_id_++;
  heap_.push(Entry{when, next_sequence_++, id, std::move(callback)});
  pending_.insert(id);
  return id;
}

ObserverId
EventQueue::AddObserver(Observer observer)
{
  FLEX_REQUIRE(static_cast<bool>(observer), "null observer");
  const ObserverId id = next_observer_id_++;
  observers_.push_back(ObserverEntry{id, std::move(observer)});
  return id;
}

void
EventQueue::RemoveObserver(ObserverId id)
{
  observers_.erase(std::remove_if(observers_.begin(), observers_.end(),
                                  [id](const ObserverEntry& entry) {
                                    return entry.id == id;
                                  }),
                   observers_.end());
  if (legacy_observer_id_ == id)
    legacy_observer_id_ = 0;
}

void
EventQueue::SetObserver(Observer observer)
{
  if (legacy_observer_id_ != 0)
    RemoveObserver(legacy_observer_id_);
  if (observer)
    legacy_observer_id_ = AddObserver(std::move(observer));
}

void
EventQueue::NotifyObservers(Seconds when)
{
  // Index loop: an observer may remove itself (or others) mid-dispatch.
  for (std::size_t i = 0; i < observers_.size(); ++i)
    observers_[i].callback(when);
}

void
EventQueue::Cancel(EventId id)
{
  // Lazy cancellation: the entry stays in the heap and is skipped when
  // popped because its id is no longer pending.
  pending_.erase(id);
}

bool
EventQueue::PopNext(Entry& out)
{
  while (!heap_.empty()) {
    Entry top = heap_.top();
    heap_.pop();
    if (pending_.erase(top.id) == 0)
      continue;  // cancelled: drop silently
    out = std::move(top);
    return true;
  }
  return false;
}

std::size_t
EventQueue::RunUntil(Seconds horizon)
{
  FLEX_REQUIRE(horizon >= now_, "horizon is in the past");
  std::size_t executed = 0;
  while (!heap_.empty()) {
    // Peek: if the earliest live event is beyond the horizon, stop.
    const Entry& top = heap_.top();
    if (pending_.count(top.id) == 0) {
      heap_.pop();
      continue;
    }
    if (top.when > horizon)
      break;
    Entry entry = top;
    heap_.pop();
    pending_.erase(entry.id);
    now_ = entry.when;
    entry.callback();
    ++executed;
    ++executed_count_;
    NotifyObservers(now_);
  }
  now_ = horizon;
  return executed;
}

bool
EventQueue::Step()
{
  Entry entry;
  if (!PopNext(entry))
    return false;
  now_ = entry.when;
  entry.callback();
  ++executed_count_;
  NotifyObservers(now_);
  return true;
}

std::size_t
EventQueue::RunAll()
{
  std::size_t executed = 0;
  while (Step())
    ++executed;
  return executed;
}

void
SchedulePeriodic(EventQueue& queue, Seconds period,
                 std::function<bool()> callback)
{
  FLEX_REQUIRE(period.value() > 0.0, "periodic events need positive period");
  // Self-rescheduling wrapper; stops when the callback returns false.
  struct Ticker {
    EventQueue* queue;
    Seconds period;
    std::function<bool()> callback;

    void
    Run(const std::shared_ptr<Ticker>& self)
    {
      if (callback())
        queue->Schedule(period, [self] { self->Run(self); });
    }
  };
  auto ticker =
      std::make_shared<Ticker>(Ticker{&queue, period, std::move(callback)});
  queue.Schedule(period, [ticker] { ticker->Run(ticker); });
}

}  // namespace flex::sim
