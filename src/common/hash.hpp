/**
 * @file
 * Deterministic FNV-1a hashing for result fingerprints.
 *
 * The parallel Monte Carlo sweeps prove bit-identical behaviour across
 * thread counts by hashing every sample of every variant into one
 * 64-bit fingerprint; two runs agree iff their fingerprints agree.
 * FNV-1a is tiny, portable, and byte-order-stable for our use because
 * all inputs are hashed through fixed-width little-endian encodings of
 * their bit patterns.
 */
#ifndef FLEX_COMMON_HASH_HPP_
#define FLEX_COMMON_HASH_HPP_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace flex {

/** Streaming 64-bit FNV-1a hasher. */
class Fnv1a {
 public:
  void
  AddBytes(const void* data, std::size_t size)
  {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= bytes[i];
      hash_ *= 0x100000001b3ull;
    }
  }

  void
  AddU64(std::uint64_t value)
  {
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i)
      bytes[i] = static_cast<unsigned char>((value >> (8 * i)) & 0xff);
    AddBytes(bytes, sizeof(bytes));
  }

  void AddI64(std::int64_t value) { AddU64(static_cast<std::uint64_t>(value)); }

  /** Hashes the exact bit pattern, so -0.0 != +0.0 and NaNs are stable. */
  void AddDouble(double value) { AddU64(std::bit_cast<std::uint64_t>(value)); }

  void AddString(std::string_view s) { AddBytes(s.data(), s.size()); }

  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;  // FNV offset basis
};

}  // namespace flex

#endif  // FLEX_COMMON_HASH_HPP_
