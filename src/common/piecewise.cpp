#include "piecewise.hpp"

#include <algorithm>

#include "error.hpp"

namespace flex {

PiecewiseLinear::PiecewiseLinear(std::vector<Point> points)
    : points_(std::move(points))
{
  FLEX_REQUIRE(!points_.empty(),
               "piecewise-linear function needs at least one breakpoint");
  for (std::size_t i = 1; i < points_.size(); ++i) {
    FLEX_REQUIRE(points_[i - 1].first < points_[i].first,
                 "piecewise-linear breakpoints must be strictly increasing "
                 "in x");
  }
}

PiecewiseLinear::PiecewiseLinear(std::initializer_list<Point> points)
    : PiecewiseLinear(std::vector<Point>(points))
{
}

PiecewiseLinear
PiecewiseLinear::Constant(double value)
{
  return PiecewiseLinear({{0.0, value}});
}

double
PiecewiseLinear::operator()(double x) const
{
  FLEX_CHECK_MSG(!points_.empty(), "evaluating empty piecewise function");
  if (x <= points_.front().first)
    return points_.front().second;
  if (x >= points_.back().first)
    return points_.back().second;
  // First breakpoint with bx > x; its predecessor starts the segment.
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), x,
      [](double value, const Point& p) { return value < p.first; });
  const Point& hi = *it;
  const Point& lo = *(it - 1);
  const double t = (x - lo.first) / (hi.first - lo.first);
  return lo.second + t * (hi.second - lo.second);
}

double
PiecewiseLinear::MinY() const
{
  FLEX_CHECK(!points_.empty());
  double min_y = points_.front().second;
  for (const auto& [x, y] : points_)
    min_y = std::min(min_y, y);
  return min_y;
}

double
PiecewiseLinear::MaxY() const
{
  FLEX_CHECK(!points_.empty());
  double max_y = points_.front().second;
  for (const auto& [x, y] : points_)
    max_y = std::max(max_y, y);
  return max_y;
}

bool
PiecewiseLinear::IsNonDecreasing() const
{
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].second < points_[i - 1].second)
      return false;
  }
  return true;
}

PiecewiseLinear
PiecewiseLinear::ScaledY(double factor) const
{
  std::vector<Point> scaled = points_;
  for (auto& [x, y] : scaled)
    y *= factor;
  return PiecewiseLinear(std::move(scaled));
}

}  // namespace flex
