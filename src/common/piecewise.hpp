/**
 * @file
 * Piecewise-linear functions.
 *
 * Two Flex concepts are piecewise linear: workload impact functions
 * (Fig. 8/11 — impact in [0,1] as a function of affected-rack fraction) and
 * UPS overload trip curves (Fig. 6 — tolerance seconds as a function of
 * load percentage). This single well-tested representation backs both.
 */
#ifndef FLEX_COMMON_PIECEWISE_HPP_
#define FLEX_COMMON_PIECEWISE_HPP_

#include <initializer_list>
#include <utility>
#include <vector>

namespace flex {

/**
 * A piecewise-linear function defined by breakpoints (x, y).
 *
 * Between breakpoints the function interpolates linearly; outside the
 * breakpoint range it extends with the boundary value (flat extrapolation),
 * which matches the semantics of both impact functions (impact saturates)
 * and trip curves (tolerance saturates).
 *
 * Breakpoints must be strictly increasing in x. Discontinuities (step
 * functions, common in impact functions with "critical rack" cliffs) are
 * expressed with two breakpoints at nearly identical x.
 */
class PiecewiseLinear {
 public:
  using Point = std::pair<double, double>;

  PiecewiseLinear() = default;

  /** Constructs from breakpoints; validates strict x-monotonicity. */
  explicit PiecewiseLinear(std::vector<Point> points);
  PiecewiseLinear(std::initializer_list<Point> points);

  /** Constant function y = value everywhere. */
  static PiecewiseLinear Constant(double value);

  /** Evaluates the function at @p x. */
  double operator()(double x) const;

  /** Breakpoints (sorted by x). */
  const std::vector<Point>& points() const { return points_; }

  /** True when no breakpoints have been supplied. */
  bool empty() const { return points_.empty(); }

  /** Smallest/largest y over the breakpoints. */
  double MinY() const;
  double MaxY() const;

  /** True when y never decreases as x increases over the breakpoints. */
  bool IsNonDecreasing() const;

  /**
   * Returns a new function scaled in y by @p factor (used to weight impact
   * functions).
   */
  PiecewiseLinear ScaledY(double factor) const;

 private:
  std::vector<Point> points_;
};

}  // namespace flex

#endif  // FLEX_COMMON_PIECEWISE_HPP_
