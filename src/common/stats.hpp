/**
 * @file
 * Summary statistics used by the evaluation harness.
 *
 * The paper reports boxplots (Figs. 9, 10), mean +/- stdev whiskers
 * (Fig. 12), and high percentiles (99.9th data latency, 95th request
 * latency). These helpers compute all of those from raw samples.
 */
#ifndef FLEX_COMMON_STATS_HPP_
#define FLEX_COMMON_STATS_HPP_

#include <cstddef>
#include <string>
#include <vector>

namespace flex {

/** Streaming accumulator for mean / variance (Welford's algorithm). */
class RunningStats {
 public:
  /** Adds one sample. */
  void Add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /** Sample variance (n - 1 denominator); 0 for fewer than 2 samples. */
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/**
 * Percentile of @p samples using linear interpolation between closest
 * ranks; @p q in [0, 100]. The input need not be sorted.
 */
double Percentile(std::vector<double> samples, double q);

/** Five-number summary backing a boxplot, as the paper's Figs. 9 and 10. */
struct BoxStats {
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;

  /** Computes the summary from raw samples. */
  static BoxStats FromSamples(std::vector<double> samples);

  /** Render as "min/p25/median/p75/max" with the given precision. */
  std::string ToString(int precision = 2) const;
};

}  // namespace flex

#endif  // FLEX_COMMON_STATS_HPP_
