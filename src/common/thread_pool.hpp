/**
 * @file
 * Work-stealing thread pool shared by the solver and the offline
 * placement fan-out.
 *
 * Design goals, in order:
 *  1. Nested-parallelism safety: a task may itself call Run() (the
 *     offline variant fan-out runs MILP solves whose waves fan out on
 *     the same pool). The caller of Run() participates in execution and
 *     only ever runs tasks of its own batch while waiting, so a full
 *     pool can never deadlock on nested waits.
 *  2. Observability: stolen-task counts are exposed so the solver can
 *     report scheduler behaviour next to its per-thread node counts.
 *  3. Simplicity: per-worker deques guarded by small mutexes. The tasks
 *     scheduled here are LP solves and whole placement runs
 *     (microseconds to seconds), so queue overhead is irrelevant.
 *
 * A pool of size N runs at most N tasks concurrently: N-1 dedicated
 * worker threads plus the thread blocked in Run(). ThreadPool::Shared()
 * is the process-wide instance sized by FLEX_SOLVER_THREADS (default:
 * hardware concurrency).
 */
#ifndef FLEX_COMMON_THREAD_POOL_HPP_
#define FLEX_COMMON_THREAD_POOL_HPP_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace flex::common {

class ThreadPool {
 public:
  /** Spawns @p threads - 1 workers; the Run() caller is the N-th lane. */
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /** Logical width (worker threads + the participating caller). */
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /**
   * Runs every task to completion, possibly concurrently; the calling
   * thread executes tasks of this batch while it waits. The first
   * exception thrown by any task is rethrown here after all tasks have
   * finished. Safe to call from inside a task (nested batches).
   */
  void Run(std::vector<std::function<void()>> tasks);

  /** Tasks claimed from another lane's deque since construction. */
  std::int64_t steal_count() const {
    return steals_.load(std::memory_order_relaxed);
  }

  /** Tasks currently executing on any lane (live utilization gauge). */
  int running_count() const {
    return running_.load(std::memory_order_relaxed);
  }

  /** Tasks queued but not yet claimed by a lane (live backlog gauge). */
  int queued_count() const {
    return pending_.load(std::memory_order_relaxed);
  }

  /**
   * Process-wide pool, created on first use with ConfiguredThreads()
   * lanes. Solver waves and placement fan-out share it by default so
   * the machine is never oversubscribed by nesting.
   */
  static ThreadPool& Shared();

  /** FLEX_SOLVER_THREADS when set and positive, else hardware threads. */
  static int ConfiguredThreads();

  /**
   * Stable lane id of the current thread: 1..size-1 inside pool
   * workers, -1 on threads the pool does not own (Run() callers use
   * lane 0 by convention: WorkerIndex() + 1).
   */
  static int WorkerIndex();

 private:
  struct Batch;
  struct Task {
    Batch* batch = nullptr;
    std::size_t index = 0;
  };
  struct Worker {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  /**
   * Claims and executes one task: own deque first, then steals. When
   * @p only is non-null, claims only tasks of that batch (used by Run()
   * callers so a nested wait never blocks on an unrelated long task).
   * @return false when no eligible task was found.
   */
  bool TryRunOne(int self, const Batch* only);

  static void Execute(const Task& task);
  void WorkerLoop(int index);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<int> pending_{0};
  std::atomic<int> running_{0};
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::int64_t> steals_{0};
};

}  // namespace flex::common

#endif  // FLEX_COMMON_THREAD_POOL_HPP_
