/**
 * @file
 * Strong unit types for power and time quantities.
 *
 * Power accounting bugs (watts vs. kilowatts, seconds vs. milliseconds) are
 * endemic in datacenter tooling; these thin wrappers make the unit part of
 * the type so mixed-unit arithmetic fails to compile instead of silently
 * corrupting capacity math.
 */
#ifndef FLEX_COMMON_UNITS_HPP_
#define FLEX_COMMON_UNITS_HPP_

#include <cmath>
#include <compare>
#include <cstdint>
#include <ostream>
#include <string>

namespace flex {

/**
 * Electrical power in watts.
 *
 * A regular value type: copyable, totally ordered, supports the affine
 * operations that make sense for power (sum, difference, scaling by a
 * dimensionless factor, and ratio of two powers).
 */
class Watts {
 public:
  constexpr Watts() = default;
  constexpr explicit Watts(double value) : value_(value) {}

  /** Number of watts as a raw double. */
  constexpr double value() const { return value_; }
  /** Convenience accessor in kilowatts. */
  constexpr double kilowatts() const { return value_ / 1e3; }
  /** Convenience accessor in megawatts. */
  constexpr double megawatts() const { return value_ / 1e6; }

  constexpr auto operator<=>(const Watts&) const = default;

  constexpr Watts operator+(Watts other) const {
    return Watts(value_ + other.value_);
  }
  constexpr Watts operator-(Watts other) const {
    return Watts(value_ - other.value_);
  }
  constexpr Watts operator-() const { return Watts(-value_); }
  constexpr Watts operator*(double scale) const {
    return Watts(value_ * scale);
  }
  constexpr Watts operator/(double scale) const {
    return Watts(value_ / scale);
  }
  /** Ratio of two powers (dimensionless). */
  constexpr double operator/(Watts other) const {
    return value_ / other.value_;
  }

  Watts& operator+=(Watts other) {
    value_ += other.value_;
    return *this;
  }
  Watts& operator-=(Watts other) {
    value_ -= other.value_;
    return *this;
  }
  Watts& operator*=(double scale) {
    value_ *= scale;
    return *this;
  }

  /** True when within @p tolerance watts of @p other. */
  constexpr bool ApproxEquals(Watts other, double tolerance = 1e-6) const {
    return std::fabs(value_ - other.value_) <= tolerance;
  }

 private:
  double value_ = 0.0;
};

constexpr Watts operator*(double scale, Watts w) { return w * scale; }

/** Builds a Watts value from kilowatts. */
constexpr Watts KiloWatts(double kw) { return Watts(kw * 1e3); }
/** Builds a Watts value from megawatts. */
constexpr Watts MegaWatts(double mw) { return Watts(mw * 1e6); }

inline std::ostream& operator<<(std::ostream& os, Watts w) {
  return os << w.value() << " W";
}

/**
 * Simulated time in seconds.
 *
 * Used throughout the discrete-event simulation; double-backed because
 * meter/controller latencies are naturally fractional seconds.
 */
class Seconds {
 public:
  constexpr Seconds() = default;
  constexpr explicit Seconds(double value) : value_(value) {}

  constexpr double value() const { return value_; }
  constexpr double milliseconds() const { return value_ * 1e3; }
  constexpr double hours() const { return value_ / 3600.0; }

  constexpr auto operator<=>(const Seconds&) const = default;

  constexpr Seconds operator+(Seconds other) const {
    return Seconds(value_ + other.value_);
  }
  constexpr Seconds operator-(Seconds other) const {
    return Seconds(value_ - other.value_);
  }
  constexpr Seconds operator*(double scale) const {
    return Seconds(value_ * scale);
  }
  constexpr Seconds operator/(double scale) const {
    return Seconds(value_ / scale);
  }
  constexpr double operator/(Seconds other) const {
    return value_ / other.value_;
  }

  Seconds& operator+=(Seconds other) {
    value_ += other.value_;
    return *this;
  }

 private:
  double value_ = 0.0;
};

constexpr Seconds operator*(double scale, Seconds s) { return s * scale; }

/** Builds Seconds from milliseconds. */
constexpr Seconds Milliseconds(double ms) { return Seconds(ms / 1e3); }
/** Builds Seconds from minutes. */
constexpr Seconds Minutes(double m) { return Seconds(m * 60.0); }
/** Builds Seconds from hours. */
constexpr Seconds Hours(double h) { return Seconds(h * 3600.0); }

inline std::ostream& operator<<(std::ostream& os, Seconds s) {
  return os << s.value() << " s";
}

/** Energy = power x time, in joules; used by battery overload budgets. */
class Joules {
 public:
  constexpr Joules() = default;
  constexpr explicit Joules(double value) : value_(value) {}

  constexpr double value() const { return value_; }
  constexpr auto operator<=>(const Joules&) const = default;

  constexpr Joules operator+(Joules other) const {
    return Joules(value_ + other.value_);
  }
  constexpr Joules operator-(Joules other) const {
    return Joules(value_ - other.value_);
  }
  Joules& operator+=(Joules other) {
    value_ += other.value_;
    return *this;
  }
  Joules& operator-=(Joules other) {
    value_ -= other.value_;
    return *this;
  }

 private:
  double value_ = 0.0;
};

constexpr Joules operator*(Watts w, Seconds s) {
  return Joules(w.value() * s.value());
}
constexpr Joules operator*(Seconds s, Watts w) { return w * s; }

inline std::ostream& operator<<(std::ostream& os, Joules j) {
  return os << j.value() << " J";
}

}  // namespace flex

#endif  // FLEX_COMMON_UNITS_HPP_
