#include "stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "error.hpp"

namespace flex {

void
RunningStats::Add(double x)
{
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double
RunningStats::variance() const
{
  if (count_ < 2)
    return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
  return std::sqrt(variance());
}

double
Percentile(std::vector<double> samples, double q)
{
  FLEX_REQUIRE(!samples.empty(), "percentile of empty sample set");
  FLEX_REQUIRE(q >= 0.0 && q <= 100.0, "percentile q must be in [0, 100]");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1)
    return samples.front();
  const double rank = q / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

BoxStats
BoxStats::FromSamples(std::vector<double> samples)
{
  FLEX_REQUIRE(!samples.empty(), "boxplot of empty sample set");
  std::sort(samples.begin(), samples.end());
  BoxStats box;
  box.min = samples.front();
  box.max = samples.back();
  // Percentile() re-sorts, which is wasteful but keeps the code simple; the
  // sample sets here are tiny (10 trace variations).
  box.p25 = Percentile(samples, 25.0);
  box.median = Percentile(samples, 50.0);
  box.p75 = Percentile(samples, 75.0);
  return box;
}

std::string
BoxStats::ToString(int precision) const
{
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << min << "/" << p25 << "/" << median << "/" << p75 << "/"
     << max;
  return os.str();
}

}  // namespace flex
