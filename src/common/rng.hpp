/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component in the library draws from a seeded Xoshiro256**
 * generator so that experiments are exactly reproducible across runs and
 * platforms (std::mt19937 distributions are not portable across standard
 * library implementations, so we implement our own transforms).
 */
#ifndef FLEX_COMMON_RNG_HPP_
#define FLEX_COMMON_RNG_HPP_

#include <cstdint>
#include <vector>

namespace flex {

/**
 * SplitMix64 generator, used to seed Xoshiro and for cheap hashing.
 */
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /** Next 64-bit value. */
  std::uint64_t Next();

 private:
  std::uint64_t state_;
};

/**
 * Xoshiro256** PRNG (Blackman & Vigna).
 *
 * Fast, high-quality, and with a portable, fully specified output sequence.
 * Also provides the uniform/normal/lognormal transforms the simulators use,
 * all implemented deterministically on top of the raw stream.
 */
class Rng {
 public:
  /** Seeds the four state words from SplitMix64(@p seed). */
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /** Raw 64-bit draw. */
  std::uint64_t NextU64();

  /** Uniform double in [0, 1). */
  double NextDouble();

  /** Uniform double in [lo, hi). */
  double Uniform(double lo, double hi);

  /** Uniform integer in [lo, hi] (inclusive); requires lo <= hi. */
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /** Standard normal via Box-Muller (deterministic, no cached spare). */
  double Normal();

  /** Normal with the given mean and standard deviation. */
  double Normal(double mean, double stddev);

  /**
   * Normal clamped to [lo, hi] by resampling (up to a bounded number of
   * attempts, then clamping); adequate for bounded power draws.
   */
  double TruncatedNormal(double mean, double stddev, double lo, double hi);

  /** Bernoulli draw with success probability @p p. */
  bool Bernoulli(double p);

  /** Exponential with the given mean (inter-arrival times). */
  double Exponential(double mean);

  /** Lognormal parameterized by the underlying normal's mu/sigma. */
  double LogNormal(double mu, double sigma);

  /** Fisher-Yates shuffle of @p items. */
  template <typename T>
  void
  Shuffle(std::vector<T>& items)
  {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j =
          static_cast<std::size_t>(UniformInt(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /** Derives an independent child generator (for per-component streams). */
  Rng Fork();

 private:
  std::uint64_t state_[4];
};

}  // namespace flex

#endif  // FLEX_COMMON_RNG_HPP_
