#include "rng.hpp"

#include <cmath>

#include "error.hpp"

namespace flex {

namespace {

inline std::uint64_t
Rotl(std::uint64_t x, int k)
{
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t
SplitMix64::Next()
{
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed)
{
  SplitMix64 sm(seed);
  for (auto& word : state_)
    word = sm.Next();
}

std::uint64_t
Rng::NextU64()
{
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double
Rng::NextDouble()
{
  // 53 bits of mantissa: uniform in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double
Rng::Uniform(double lo, double hi)
{
  return lo + (hi - lo) * NextDouble();
}

std::int64_t
Rng::UniformInt(std::int64_t lo, std::int64_t hi)
{
  FLEX_CHECK_MSG(lo <= hi, "UniformInt requires lo <= hi");
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0)  // full 64-bit range
    return static_cast<std::int64_t>(NextU64());
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t draw;
  do {
    draw = NextU64();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % range);
}

double
Rng::Normal()
{
  // Box-Muller; discard the second variate to keep the stream stateless.
  double u1 = NextDouble();
  while (u1 <= 0.0)
    u1 = NextDouble();
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double
Rng::Normal(double mean, double stddev)
{
  return mean + stddev * Normal();
}

double
Rng::TruncatedNormal(double mean, double stddev, double lo, double hi)
{
  FLEX_CHECK_MSG(lo <= hi, "TruncatedNormal requires lo <= hi");
  constexpr int kMaxAttempts = 64;
  for (int i = 0; i < kMaxAttempts; ++i) {
    const double draw = Normal(mean, stddev);
    if (draw >= lo && draw <= hi)
      return draw;
  }
  const double draw = Normal(mean, stddev);
  return draw < lo ? lo : (draw > hi ? hi : draw);
}

bool
Rng::Bernoulli(double p)
{
  return NextDouble() < p;
}

double
Rng::Exponential(double mean)
{
  FLEX_CHECK_MSG(mean > 0.0, "Exponential requires positive mean");
  double u = NextDouble();
  while (u <= 0.0)
    u = NextDouble();
  return -mean * std::log(u);
}

double
Rng::LogNormal(double mu, double sigma)
{
  return std::exp(Normal(mu, sigma));
}

Rng
Rng::Fork()
{
  return Rng(NextU64());
}

}  // namespace flex
