/**
 * @file
 * Error handling helpers.
 *
 * Follows the gem5 fatal()/panic() distinction: configuration or input
 * errors a user can cause throw flex::ConfigError; internal invariant
 * violations (bugs in Flex itself) throw flex::InternalError via
 * FLEX_CHECK.
 */
#ifndef FLEX_COMMON_ERROR_HPP_
#define FLEX_COMMON_ERROR_HPP_

#include <sstream>
#include <stdexcept>
#include <string>

namespace flex {

/** Raised for invalid user-supplied configuration or arguments. */
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/** Raised when an internal invariant is violated (a bug in this library). */
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void
ThrowInternal(const char* expr, const char* file, int line,
              const std::string& message)
{
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!message.empty())
    os << " — " << message;
  throw InternalError(os.str());
}

[[noreturn]] inline void
ThrowConfig(const char* file, int line, const std::string& message)
{
  std::ostringstream os;
  os << file << ":" << line << ": invalid configuration: " << message;
  throw ConfigError(os.str());
}

}  // namespace detail

/** Internal invariant check; throws InternalError when false. */
#define FLEX_CHECK(expr)                                                  \
  do {                                                                    \
    if (!(expr))                                                          \
      ::flex::detail::ThrowInternal(#expr, __FILE__, __LINE__, "");       \
  } while (0)

/** Internal invariant check with an explanatory message. */
#define FLEX_CHECK_MSG(expr, msg)                                         \
  do {                                                                    \
    if (!(expr))                                                          \
      ::flex::detail::ThrowInternal(#expr, __FILE__, __LINE__, (msg));    \
  } while (0)

/** User-facing configuration error with a message. */
#define FLEX_CONFIG_ERROR(msg)                                            \
  ::flex::detail::ThrowConfig(__FILE__, __LINE__, (msg))

/** Validates a user-supplied condition; throws ConfigError when false. */
#define FLEX_REQUIRE(expr, msg)                                           \
  do {                                                                    \
    if (!(expr))                                                          \
      ::flex::detail::ThrowConfig(__FILE__, __LINE__, (msg));             \
  } while (0)

}  // namespace flex

#endif  // FLEX_COMMON_ERROR_HPP_
