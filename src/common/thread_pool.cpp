#include "thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

namespace flex::common {

namespace {

thread_local int tl_worker_index = -1;

}  // namespace

/** One Run() invocation: its tasks plus completion bookkeeping. */
struct ThreadPool::Batch {
  const std::vector<std::function<void()>>* tasks = nullptr;
  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t remaining = 0;         // guarded by mu
  std::exception_ptr error;          // first failure, guarded by mu
};

ThreadPool::ThreadPool(int threads)
{
  const int lanes = std::max(1, threads);
  for (int i = 0; i < lanes - 1; ++i)
    workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i)
    threads_.emplace_back([this, i] { WorkerLoop(static_cast<int>(i)); });
}

ThreadPool::~ThreadPool()
{
  stop_.store(true, std::memory_order_release);
  wake_cv_.notify_all();
  for (std::thread& t : threads_)
    t.join();
}

int
ThreadPool::ConfiguredThreads()
{
  if (const char* env = std::getenv("FLEX_SOLVER_THREADS")) {
    const int value = std::atoi(env);
    if (value > 0)
      return value;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool&
ThreadPool::Shared()
{
  static ThreadPool pool(ConfiguredThreads());
  return pool;
}

int
ThreadPool::WorkerIndex()
{
  return tl_worker_index;
}

void
ThreadPool::Execute(const Task& task)
{
  Batch* batch = task.batch;
  try {
    (*batch->tasks)[task.index]();
  } catch (...) {
    std::lock_guard<std::mutex> lock(batch->mu);
    if (!batch->error)
      batch->error = std::current_exception();
  }
  // The decrement and the notification share the batch mutex so a
  // waiter cannot observe remaining == 0 and destroy the batch while a
  // worker still holds a reference between the two steps.
  std::lock_guard<std::mutex> lock(batch->mu);
  if (--batch->remaining == 0)
    batch->done_cv.notify_all();
}

bool
ThreadPool::TryRunOne(int self, const Batch* only)
{
  Task task;
  bool found = false;
  const int n = static_cast<int>(workers_.size());
  const int start = self >= 0 ? self : 0;
  for (int k = 0; k < n && !found; ++k) {
    const int victim = (start + k) % n;
    Worker& worker = *workers_[static_cast<std::size_t>(victim)];
    std::lock_guard<std::mutex> lock(worker.mu);
    if (worker.tasks.empty())
      continue;
    if (only == nullptr) {
      // Own queue pops LIFO (cache-warm), steals pop FIFO.
      if (victim == self) {
        task = worker.tasks.back();
        worker.tasks.pop_back();
      } else {
        task = worker.tasks.front();
        worker.tasks.pop_front();
      }
      found = true;
    } else {
      // Batch-filtered claim: scan for the first matching task.
      for (auto it = worker.tasks.begin(); it != worker.tasks.end(); ++it) {
        if (it->batch == only) {
          task = *it;
          worker.tasks.erase(it);
          found = true;
          break;
        }
      }
    }
    if (found && victim != self)
      steals_.fetch_add(1, std::memory_order_relaxed);
  }
  if (!found)
    return false;
  pending_.fetch_sub(1, std::memory_order_relaxed);
  running_.fetch_add(1, std::memory_order_relaxed);
  Execute(task);
  running_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void
ThreadPool::WorkerLoop(int index)
{
  tl_worker_index = index + 1;  // lane 0 is reserved for Run() callers
  while (!stop_.load(std::memory_order_acquire)) {
    if (TryRunOne(index, nullptr))
      continue;
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait_for(lock, std::chrono::milliseconds(50), [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_relaxed) > 0;
    });
  }
}

void
ThreadPool::Run(std::vector<std::function<void()>> tasks)
{
  if (tasks.empty())
    return;
  if (workers_.empty()) {
    for (const auto& task : tasks) {
      running_.fetch_add(1, std::memory_order_relaxed);
      task();
      running_.fetch_sub(1, std::memory_order_relaxed);
    }
    return;
  }

  Batch batch;
  batch.tasks = &tasks;
  batch.remaining = tasks.size();

  const int self = WorkerIndex() - 1;  // own deque when called from a worker
  const std::size_t n = workers_.size();
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const std::size_t lane =
        self >= 0 ? static_cast<std::size_t>(self)
                  : next_.fetch_add(1, std::memory_order_relaxed) % n;
    Worker& worker = *workers_[lane];
    std::lock_guard<std::mutex> lock(worker.mu);
    worker.tasks.push_back(Task{&batch, i});
  }
  pending_.fetch_add(static_cast<int>(tasks.size()),
                     std::memory_order_relaxed);
  wake_cv_.notify_all();

  while (true) {
    {
      std::lock_guard<std::mutex> lock(batch.mu);
      if (batch.remaining == 0)
        break;
    }
    if (!TryRunOne(self, &batch)) {
      // All of this batch's tasks are claimed; wait for stragglers.
      std::unique_lock<std::mutex> lock(batch.mu);
      batch.done_cv.wait_for(lock, std::chrono::milliseconds(1),
                             [&batch] { return batch.remaining == 0; });
    }
  }
  if (batch.error)
    std::rethrow_exception(batch.error);
}

}  // namespace flex::common
