/**
 * @file
 * Cooling domain model with redundancy (paper Section VI).
 *
 * Flex leverages redundant cooling exactly like redundant power — but
 * with a crucial difference the paper calls out: "Upon the loss of this
 * redundant cooling, unlike losing redundant power, several minutes are
 * available for mitigation as datacenter temperature rise is gradual.
 * Hence, other mitigations, such as workload migration to another
 * cooling domain, can be used before enacting strict Flex
 * capping/shutdown actions." This module models the cooling units, the
 * room's thermal inertia, and that mitigation ladder.
 */
#ifndef FLEX_COOLING_COOLING_DOMAIN_HPP_
#define FLEX_COOLING_COOLING_DOMAIN_HPP_

#include <functional>
#include <vector>

#include "common/units.hpp"
#include "sim/event_queue.hpp"

namespace flex::cooling {

/** Physical configuration of one cooling domain. */
struct CoolingDomainConfig {
  /** Cooling units (CRAHs/chillers); capacity is N+redundant sized. */
  int num_units = 4;
  /** Heat removal capacity of each unit. */
  Watts unit_capacity = MegaWatts(3.2);
  /** Thermal inertia of the room (J per degree C). */
  double thermal_mass_j_per_c = 1.0e8;
  /** Supply temperature with adequate cooling. */
  double supply_temperature_c = 22.0;
  /** Temperature above which IT equipment is at risk. */
  double max_safe_temperature_c = 35.0;
  /** Relaxation time back toward supply temperature when cooled. */
  Seconds cooldown_tau = Seconds(120.0);
};

/**
 * Thermal state of one cooling domain.
 *
 * With cooling capacity above the heat load the temperature relaxes
 * toward the supply temperature; with a deficit it rises linearly with
 * deficit / thermal mass — gradual, unlike the instantaneous electrical
 * overload of a UPS failover.
 */
class CoolingDomain {
 public:
  explicit CoolingDomain(CoolingDomainConfig config);

  /** Advances the thermal state by @p dt under IT heat load @p load. */
  void Advance(Watts load, Seconds dt);

  /** Fails or restores one cooling unit. */
  void SetUnitFailed(int unit, bool failed);

  /** Heat removal available with the currently healthy units. */
  Watts AvailableCooling() const;

  double temperature_c() const { return temperature_c_; }
  bool Overheated() const;

  /**
   * Time until the room crosses the safe temperature at a constant
   * @p load; effectively unbounded when cooling covers the load. The
   * paper's point: this is minutes, not the ~10 s of a UPS overload.
   */
  Seconds TimeToOverheat(Watts load) const;

  int healthy_units() const;
  const CoolingDomainConfig& config() const { return config_; }

 private:
  CoolingDomainConfig config_;
  std::vector<bool> unit_failed_;
  double temperature_c_;
};

/** Mitigation ladder tuning. */
struct CoolingMitigationConfig {
  /** Check cadence. */
  Seconds check_period = Seconds(15.0);
  /** Time for workload migration to another cooling domain to complete. */
  Seconds migration_delay = Minutes(3.0);
  /** Fraction of the heat load that migration can move away. */
  double migratable_fraction = 0.4;
  /** Engage Flex capping when overheat is closer than this. */
  Seconds flex_engage_threshold = Minutes(2.0);
};

/**
 * The Section VI mitigation ladder: on a cooling deficit, first migrate
 * workloads to another cooling domain; only if the room would still
 * overheat does it fall back to Flex power capping.
 */
class CoolingFailureHandler {
 public:
  /**
   * @param load_source current IT heat load of the domain
   * @param request_power_cut called with the wattage Flex must shed when
   *        migration alone cannot prevent overheating
   */
  CoolingFailureHandler(sim::EventQueue& queue, CoolingDomain& domain,
                        CoolingMitigationConfig config,
                        std::function<Watts()> load_source,
                        std::function<void(Watts)> request_power_cut);

  /** Starts periodic checks. */
  void Start();
  void Stop();

  /** Heat load currently moved away by completed migrations. */
  Watts migrated_load() const { return migrated_; }
  bool migration_in_progress() const { return migration_pending_; }
  int flex_engagements() const { return flex_engagements_; }

  /** Effective load after migration relief. */
  Watts EffectiveLoad() const;

 private:
  void Check();

  sim::EventQueue& queue_;
  CoolingDomain& domain_;
  CoolingMitigationConfig config_;
  std::function<Watts()> load_source_;
  std::function<void(Watts)> request_power_cut_;
  bool running_ = false;
  bool migration_pending_ = false;
  Watts migrated_{0.0};
  int flex_engagements_ = 0;
};

}  // namespace flex::cooling

#endif  // FLEX_COOLING_COOLING_DOMAIN_HPP_
