#include "cooling_domain.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "power/trip_curve.hpp"

namespace flex::cooling {

CoolingDomain::CoolingDomain(CoolingDomainConfig config)
    : config_(config),
      unit_failed_(static_cast<std::size_t>(config.num_units), false),
      temperature_c_(config.supply_temperature_c)
{
  FLEX_REQUIRE(config_.num_units >= 1, "need at least one cooling unit");
  FLEX_REQUIRE(config_.unit_capacity > Watts(0.0),
               "unit capacity must be positive");
  FLEX_REQUIRE(config_.thermal_mass_j_per_c > 0.0,
               "thermal mass must be positive");
  FLEX_REQUIRE(config_.max_safe_temperature_c > config_.supply_temperature_c,
               "safe temperature must exceed supply temperature");
}

void
CoolingDomain::SetUnitFailed(int unit, bool failed)
{
  FLEX_REQUIRE(unit >= 0 && unit < config_.num_units,
               "cooling unit index out of range");
  unit_failed_[static_cast<std::size_t>(unit)] = failed;
}

int
CoolingDomain::healthy_units() const
{
  int healthy = 0;
  for (const bool failed : unit_failed_)
    healthy += failed ? 0 : 1;
  return healthy;
}

Watts
CoolingDomain::AvailableCooling() const
{
  return config_.unit_capacity * static_cast<double>(healthy_units());
}

bool
CoolingDomain::Overheated() const
{
  return temperature_c_ > config_.max_safe_temperature_c;
}

void
CoolingDomain::Advance(Watts load, Seconds dt)
{
  FLEX_REQUIRE(load >= Watts(0.0), "negative heat load");
  FLEX_REQUIRE(dt.value() >= 0.0, "negative time step");
  const Watts cooling = AvailableCooling();
  if (load > cooling) {
    // Deficit: the room heats with the uncooled remainder.
    const double deficit = (load - cooling).value();
    temperature_c_ += deficit * dt.value() / config_.thermal_mass_j_per_c;
  } else {
    // Headroom: relax toward the supply temperature.
    const double decay = std::exp(-dt.value() / config_.cooldown_tau.value());
    temperature_c_ = config_.supply_temperature_c +
                     (temperature_c_ - config_.supply_temperature_c) * decay;
  }
}

Seconds
CoolingDomain::TimeToOverheat(Watts load) const
{
  const Watts cooling = AvailableCooling();
  if (load <= cooling)
    return power::TripCurve::Indefinite();
  if (Overheated())
    return Seconds(0.0);
  const double deficit = (load - cooling).value();
  const double headroom_c = config_.max_safe_temperature_c - temperature_c_;
  return Seconds(headroom_c * config_.thermal_mass_j_per_c / deficit);
}

CoolingFailureHandler::CoolingFailureHandler(
    sim::EventQueue& queue, CoolingDomain& domain,
    CoolingMitigationConfig config, std::function<Watts()> load_source,
    std::function<void(Watts)> request_power_cut)
    : queue_(queue),
      domain_(domain),
      config_(config),
      load_source_(std::move(load_source)),
      request_power_cut_(std::move(request_power_cut))
{
  FLEX_REQUIRE(static_cast<bool>(load_source_), "null load source");
  FLEX_REQUIRE(static_cast<bool>(request_power_cut_),
               "null power-cut callback");
  FLEX_REQUIRE(config_.migratable_fraction >= 0.0 &&
                   config_.migratable_fraction <= 1.0,
               "migratable fraction must be in [0, 1]");
}

Watts
CoolingFailureHandler::EffectiveLoad() const
{
  return std::max(Watts(0.0), load_source_() - migrated_);
}

void
CoolingFailureHandler::Start()
{
  FLEX_REQUIRE(!running_, "handler already started");
  running_ = true;
  sim::SchedulePeriodic(queue_, config_.check_period, [this] {
    if (!running_)
      return false;
    Check();
    return true;
  });
}

void
CoolingFailureHandler::Stop()
{
  running_ = false;
}

void
CoolingFailureHandler::Check()
{
  const Watts load = EffectiveLoad();
  const Watts cooling = domain_.AvailableCooling();
  if (load <= cooling) {
    // Healthy again: completed migrations drain back over time; model
    // that by releasing the migrated load once there is ample headroom.
    if (migrated_ > Watts(0.0) && load + migrated_ <= cooling)
      migrated_ = Watts(0.0);
    return;
  }

  // Step 1 of the ladder: migrate workloads to another cooling domain.
  // Temperature rise is gradual, so this usually completes in time.
  if (!migration_pending_ && migrated_ <= Watts(0.0)) {
    migration_pending_ = true;
    const Watts moved = load * config_.migratable_fraction;
    queue_.Schedule(config_.migration_delay, [this, moved] {
      migrated_ = moved;
      migration_pending_ = false;
    });
  }

  // Step 2: if the room would overheat before migration can land (or
  // migration was not enough), engage Flex power capping now.
  const Seconds to_overheat = domain_.TimeToOverheat(load);
  const bool migration_will_save_us =
      migration_pending_ &&
      to_overheat.value() >
          config_.migration_delay.value() + config_.check_period.value();
  if (!migration_will_save_us &&
      to_overheat.value() <= config_.flex_engage_threshold.value()) {
    ++flex_engagements_;
    request_power_cut_(load - cooling);
  }
}

}  // namespace flex::cooling
