/**
 * @file
 * Declarative alert rules evaluated deterministically on simulated time.
 *
 * Rules read only the TimeSeriesStore (never wall clocks, never live
 * registry objects), and Evaluate() is called from the simulation's
 * sample tick, so an alert timeline is a pure function of the seed:
 * bit-identical across sweep lanes, thread counts, and replays, and
 * fully functional with the HTTP plane disabled.
 *
 * Rule kinds:
 *  - kThreshold: latest value vs a bound (or vs another series via
 *    threshold_metric — how the reaction-budget rule compares the
 *    `reaction.end_to_end_s` p99 against the `reaction.budget_s` gauge
 *    that check_budget.sh previously checked only offline).
 *  - kStale: the series has not *changed value* within window_s —
 *    a progress detector, which is what catches a telemetry outage
 *    (`pipeline.readings_delivered` goes flat). An absent series is
 *    treated as fresh so rules do not fire before first data.
 *  - kRateOfChange: delta over window_s divided by window_s, compared
 *    against the bound.
 *  - kBurnRate: two-window SLO burn rate in the Google SRE style.
 *    burn = ((Δerr/Δtotal) / (1 - slo_target)); the condition holds
 *    only when burn exceeds burn_factor in BOTH the short and the long
 *    window, so a blip neither pages nor does a slow burn hide.
 *
 * State machine: inactive → pending (condition true) → firing (held
 * for for_s) → inactive (condition false; "resolved"). Every edge is
 * recorded in the timeline, stamped into the flight recorder
 * (RecordKind::kAlert), and forwarded to an optional notifier — which
 * is how harnesses dump a forensic bundle the moment a rule fires.
 */
#ifndef FLEX_OBS_ALERTS_HPP_
#define FLEX_OBS_ALERTS_HPP_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/timeseries.hpp"

namespace flex::obs {

class FlightRecorder;

enum class AlertSeverity { kInfo = 0, kWarn, kPage };
enum class AlertRuleKind { kThreshold, kStale, kRateOfChange, kBurnRate };
enum class AlertCompare { kGreaterThan, kLessThan };
enum class AlertState { kInactive = 0, kPending, kFiring };

const char* AlertSeverityName(AlertSeverity severity);
const char* AlertRuleKindName(AlertRuleKind kind);
const char* AlertStateName(AlertState state);

/** One declarative rule. Unused fields are ignored per kind. */
struct AlertRule {
  std::string name;         ///< stable identifier ("TelemetryStalled")
  std::string metric;       ///< series the rule reads
  std::string description;  ///< one-line human text for /alerts
  AlertSeverity severity = AlertSeverity::kWarn;
  AlertRuleKind kind = AlertRuleKind::kThreshold;

  /** kThreshold / kRateOfChange: comparison direction. */
  AlertCompare compare = AlertCompare::kGreaterThan;
  /** kThreshold / kRateOfChange: the bound. */
  double threshold = 0.0;
  /**
   * kThreshold only: when set, the bound is the latest value of this
   * series instead of `threshold` (inactive until that series exists).
   */
  std::string threshold_metric;

  /** kStale / kRateOfChange: trailing window in simulated seconds. */
  double window_s = 60.0;

  /** Condition must hold this long (pending) before firing. */
  double for_s = 0.0;

  // kBurnRate only.
  std::string total_metric;      ///< denominator counter
  double slo_target = 0.999;     ///< e.g. 99.9% of episodes in budget
  double burn_factor = 2.0;      ///< fire when burn exceeds this
  double short_window_s = 60.0;
  double long_window_s = 300.0;
};

/** One state-machine edge. */
struct AlertTransition {
  double t = 0.0;
  std::string rule;
  AlertState from = AlertState::kInactive;
  AlertState to = AlertState::kInactive;
  double value = 0.0;  ///< rule value at the edge (burn, level, age, ...)
  std::string message;
};

/** Live state of one rule. */
struct AlertStatus {
  AlertRule rule;
  AlertState state = AlertState::kInactive;
  double since_s = 0.0;      ///< when the current state was entered
  double last_value = 0.0;   ///< most recent evaluated rule value
  std::uint64_t fire_count = 0;
};

/** Deep copy for the live plane (/alerts, /healthz, /metrics). */
struct AlertsSnapshot {
  double sim_time_seconds = 0.0;
  int firing = 0;
  int pending = 0;
  /** Highest severity among firing rules (kInfo when none fire). */
  AlertSeverity worst_firing = AlertSeverity::kInfo;
  std::vector<AlertStatus> statuses;
  std::vector<AlertTransition> timeline;  ///< most recent edges
};

/**
 * The engine. Single-threaded; owns no store — the caller samples the
 * store then calls Evaluate(now) on the same cadence.
 */
class AlertEngine {
 public:
  AlertEngine(const TimeSeriesStore* store, std::vector<AlertRule> rules);

  AlertEngine(const AlertEngine&) = delete;
  AlertEngine& operator=(const AlertEngine&) = delete;

  /** Optional: every edge is stamped as RecordKind::kAlert. */
  void SetRecorder(FlightRecorder* recorder) { recorder_ = recorder; }

  /**
   * Optional: called on every edge after it is recorded. Harnesses
   * filter on `to == kFiring` to dump forensic bundles.
   */
  using Notifier =
      std::function<void(const AlertTransition&, const AlertStatus&)>;
  void SetNotifier(Notifier notifier) { notifier_ = std::move(notifier); }

  /**
   * Evaluates every rule at simulated time @p now_s. Deterministic:
   * reads only the store. Call on a fixed simulated cadence.
   */
  void Evaluate(double now_s);

  const std::vector<AlertStatus>& statuses() const { return statuses_; }
  const std::vector<AlertTransition>& timeline() const { return timeline_; }

  int firing_count() const;
  int pending_count() const;
  /** Highest severity among firing rules (kInfo when none fire). */
  AlertSeverity worst_firing_severity() const;
  std::uint64_t total_fired() const { return total_fired_; }
  std::uint64_t evaluations() const { return evaluations_; }

  /** FNV-1a over the full timeline + current states. */
  std::uint64_t Fingerprint() const;

  /** Deep copy; the timeline is clipped to its most recent entries. */
  AlertsSnapshot Snapshot(std::size_t timeline_tail = 256) const;

  /** Timeline as JSONL (forensic-bundle export). */
  std::string TimelineJsonl() const;

 private:
  struct RuleRuntime {
    double pending_since = 0.0;
  };

  /** True when the rule's raw condition holds; fills value/why. */
  bool Condition(const AlertRule& rule, double now_s, double* value,
                 std::string* why) const;
  void Transition(std::size_t i, double now_s, AlertState to, double value,
                  const std::string& message);

  const TimeSeriesStore* store_;
  std::vector<AlertStatus> statuses_;
  std::vector<RuleRuntime> runtime_;
  std::vector<AlertTransition> timeline_;
  FlightRecorder* recorder_ = nullptr;
  Notifier notifier_;
  std::uint64_t total_fired_ = 0;
  std::uint64_t evaluations_ = 0;
};

/**
 * Built-in rules wrapping the existing safety surfaces. All reference
 * metrics that the emulation/fault harnesses already export, so the
 * set is safe to enable anywhere (absent series stay inactive).
 */
AlertRule InvariantViolationRule();
AlertRule WatchdogStallRule();
AlertRule TelemetryStaleRule(double window_s = 15.0, double for_s = 5.0);
AlertRule ReactionBudgetRule(double for_s = 0.0);
AlertRule ReactionBurnRateRule();
AlertRule UpsOverloadRule(double for_s = 0.0);
std::vector<AlertRule> BuiltinAlertRules();

/**
 * Copyable harness wiring: store shape + rule set, embedded in
 * EmulationConfig / ScenarioConfig so sweep variants carry it by value.
 */
struct AlertsConfig {
  /** Off by default: existing harnesses are unchanged until opted in. */
  bool enabled = false;
  TimeSeriesConfig store;
  /** Empty means BuiltinAlertRules(). */
  std::vector<AlertRule> rules;
  /**
   * When non-empty, harnesses that own an Observability dump a
   * forensic bundle under this directory the first time a rule fires.
   */
  std::string forensics_root;
};

}  // namespace flex::obs

#endif  // FLEX_OBS_ALERTS_HPP_
