#include "metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sim/event_queue.hpp"

namespace flex::obs {

namespace {

/** Dot-separated lowercase segments: "pipeline.publish_lag_s". */
bool
ValidMetricName(const std::string& name)
{
  if (name.empty() || name.front() == '.' || name.back() == '.')
    return false;
  bool prev_dot = false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '.';
    if (!ok)
      return false;
    if (c == '.' && prev_dot)
      return false;
    prev_dot = c == '.';
  }
  return true;
}

}  // namespace

HistogramConfig
HistogramConfig::Exponential(double first, double factor, int count)
{
  FLEX_REQUIRE(first > 0.0, "first histogram edge must be positive");
  FLEX_REQUIRE(factor > 1.0, "histogram edge factor must exceed 1");
  FLEX_REQUIRE(count >= 1, "histogram needs at least one edge");
  HistogramConfig config;
  config.edges.reserve(static_cast<std::size_t>(count));
  double edge = first;
  for (int i = 0; i < count; ++i) {
    config.edges.push_back(edge);
    edge *= factor;
  }
  return config;
}

HistogramConfig
HistogramConfig::LatencySeconds()
{
  // 1 ms .. ~65 s in sqrt(2) steps: fine resolution around the paper's
  // 1.5 s data-latency and 10 s end-to-end budgets.
  return Exponential(1e-3, std::sqrt(2.0), 33);
}

HistogramConfig
HistogramConfig::WallMicros()
{
  // 1 us .. ~1 s in x2 steps for wall-clock code timings.
  return Exponential(1.0, 2.0, 20);
}

Histogram::Histogram(HistogramConfig config) : edges_(std::move(config.edges))
{
  FLEX_REQUIRE(!edges_.empty(), "histogram needs bucket edges");
  FLEX_REQUIRE(std::is_sorted(edges_.begin(), edges_.end()) &&
                   std::adjacent_find(edges_.begin(), edges_.end()) ==
                       edges_.end(),
               "histogram edges must be strictly ascending");
  counts_.assign(edges_.size() + 1, 0);
}

void
Histogram::Observe(double sample)
{
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), sample);
  ++counts_[static_cast<std::size_t>(it - edges_.begin())];
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  sum_ += sample;
}

double
Histogram::Quantile(double q) const
{
  FLEX_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  if (count_ == 0)
    return 0.0;
  const double rank = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0)
      continue;
    const double before = static_cast<double>(seen);
    seen += counts_[b];
    if (static_cast<double>(seen) < rank)
      continue;
    // Interpolate within bucket b. The lower edge of bucket 0 is the
    // observed min; the overflow bucket is capped at the observed max.
    const double lo = b == 0 ? min_ : edges_[b - 1];
    const double hi = b < edges_.size() ? edges_[b] : max_;
    const double fraction =
        counts_[b] > 0 ? (rank - before) / static_cast<double>(counts_[b])
                       : 0.0;
    const double estimate = lo + (hi - lo) * std::clamp(fraction, 0.0, 1.0);
    return std::clamp(estimate, min_, max_);
  }
  return max_;
}

void
Histogram::Merge(const Histogram& other)
{
  FLEX_REQUIRE(edges_ == other.edges_,
               "histograms with different bucket layouts cannot merge");
  for (std::size_t b = 0; b < counts_.size(); ++b)
    counts_[b] += other.counts_[b];
  if (other.count_ > 0) {
    min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
    max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void
Histogram::Reset()
{
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

const char*
MetricKindName(MetricKind kind)
{
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

const MetricRow*
MetricsSnapshot::Find(const std::string& name) const
{
  for (const MetricRow& row : rows) {
    if (row.name == name)
      return &row;
  }
  return nullptr;
}

void
MetricsSnapshotBuilder::Push(std::string name, MetricKind kind, double value)
{
  MetricRow row;
  row.name = std::move(name);
  row.kind = kind;
  row.value = value;
  rows_.push_back(std::move(row));
}

void
MetricsSnapshotBuilder::Build(double sim_time_seconds, MetricsSnapshot* out)
{
  FLEX_REQUIRE(out != nullptr, "null snapshot output");
  std::sort(rows_.begin(), rows_.end(),
            [](const MetricRow& a, const MetricRow& b) {
              return a.name < b.name;
            });
  out->sim_time_seconds = sim_time_seconds;
  // Swap storage instead of copying: the caller's old rows become the
  // builder's next buffer, so a publish loop stops allocating once both
  // vectors have grown to the steady-state row count.
  std::swap(out->rows, rows_);
  rows_.clear();
}

MetricsRegistry::MetricsRegistry(const sim::EventQueue* clock) : clock_(clock)
{
}

MetricsRegistry::Metric&
MetricsRegistry::FindOrCreate(const std::string& name, MetricKind kind,
                              const HistogramConfig* config)
{
  const auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    if (it->second.kind != kind) {
      FLEX_CONFIG_ERROR("metric '" + name + "' already registered as " +
                        MetricKindName(it->second.kind) + ", requested as " +
                        MetricKindName(kind));
    }
    return it->second;
  }
  FLEX_REQUIRE(ValidMetricName(name),
               "metric names are dot-separated [a-z0-9_] segments: '" + name +
                   "'");
  Metric metric;
  metric.kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      metric.counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      metric.gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      metric.histogram = std::make_unique<Histogram>(*config);
      break;
  }
  return metrics_.emplace(name, std::move(metric)).first->second;
}

Counter&
MetricsRegistry::counter(const std::string& name)
{
  return *FindOrCreate(name, MetricKind::kCounter, nullptr).counter;
}

Gauge&
MetricsRegistry::gauge(const std::string& name)
{
  return *FindOrCreate(name, MetricKind::kGauge, nullptr).gauge;
}

Histogram&
MetricsRegistry::histogram(const std::string& name, HistogramConfig config)
{
  return *FindOrCreate(name, MetricKind::kHistogram, &config).histogram;
}

MetricsSnapshot
MetricsRegistry::Snapshot() const
{
  MetricsSnapshot snapshot;
  snapshot.sim_time_seconds = clock_ != nullptr ? clock_->Now().value() : 0.0;
  snapshot.rows.reserve(metrics_.size());
  for (const auto& [name, metric] : metrics_) {
    MetricRow row;
    row.name = name;
    row.kind = metric.kind;
    switch (metric.kind) {
      case MetricKind::kCounter:
        row.value = metric.counter->value();
        break;
      case MetricKind::kGauge:
        row.value = metric.gauge->value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *metric.histogram;
        row.count = h.count();
        row.sum = h.sum();
        row.min = h.min();
        row.max = h.max();
        row.p50 = h.Quantile(0.50);
        row.p99 = h.Quantile(0.99);
        break;
      }
    }
    snapshot.rows.push_back(std::move(row));
  }
  return snapshot;
}

void
MetricsRegistry::Reset()
{
  for (auto& [name, metric] : metrics_) {
    switch (metric.kind) {
      case MetricKind::kCounter:
        metric.counter->Reset();
        break;
      case MetricKind::kGauge:
        metric.gauge->Reset();
        break;
      case MetricKind::kHistogram:
        metric.histogram->Reset();
        break;
    }
  }
}

}  // namespace flex::obs
