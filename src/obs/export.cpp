#include "export.hpp"

#include <cstdio>
#include <fstream>

namespace flex::obs {

namespace {

/** %.9g round-trips doubles we care about and stays compact. */
std::string
Num(double value)
{
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string
MetricJsonObject(const MetricRow& row)
{
  std::string out = "{\"type\":\"";
  out += MetricKindName(row.kind);
  out += "\"";
  if (row.kind == MetricKind::kHistogram) {
    out += ",\"count\":" + std::to_string(row.count);
    out += ",\"sum\":" + Num(row.sum);
    out += ",\"min\":" + Num(row.min);
    out += ",\"max\":" + Num(row.max);
    out += ",\"p50\":" + Num(row.p50);
    out += ",\"p99\":" + Num(row.p99);
  } else {
    out += ",\"value\":" + Num(row.value);
  }
  out += "}";
  return out;
}

}  // namespace

std::string
TraceToJson(const ReactionTrace& trace)
{
  std::string out = "{";
  out += "\"trace_id\":" + std::to_string(trace.id);
  out += ",\"ups\":" + std::to_string(trace.ups_index);
  out += ",\"replica\":" + std::to_string(trace.detecting_replica);
  out += ",\"complete\":" + std::string(trace.complete ? "true" : "false");
  out += ",\"actions\":" + std::to_string(trace.actions);
  out += ",\"duplicate_detections\":" +
         std::to_string(trace.duplicate_detections);
  out += ",\"duplicate_waves\":" + std::to_string(trace.duplicate_waves);
  out += ",\"stages\":{";
  out += "\"meter_sample\":" + Num(trace.sampled_at.value());
  out += ",\"publish\":" + Num(trace.delivered_at.value());
  out += ",\"observe\":" + Num(trace.detected_at.value());
  if (trace.actions > 0)
    out += ",\"decide\":" + Num(trace.decided_at.value());
  if (trace.complete)
    out += ",\"actuate\":" + Num(trace.enforced_at.value());
  out += "}";
  if (trace.complete) {
    out += ",\"end_to_end_s\":" + Num(trace.EndToEnd().value());
    out += ",\"budget_s\":" + Num(trace.budget.value());
    out += ",\"within_budget\":" +
           std::string(trace.WithinBudget() ? "true" : "false");
  }
  out += "}";
  return out;
}

std::string
TracesToJsonl(const ReactionTracer& tracer)
{
  std::string out;
  for (const ReactionTrace& trace : tracer.traces()) {
    out += TraceToJson(trace);
    out += '\n';
  }
  return out;
}

std::string
SnapshotToJson(const MetricsSnapshot& snapshot)
{
  std::string out = "{\n";
  out += "  \"sim_time_s\": " + Num(snapshot.sim_time_seconds);
  out += ",\n  \"metrics\": {";
  bool first = true;
  for (const MetricRow& row : snapshot.rows) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + row.name + "\": " + MetricJsonObject(row);
  }
  out += "\n  }\n}\n";
  return out;
}

std::string
SnapshotToCsv(const MetricsSnapshot& snapshot)
{
  std::string out = "name,kind,value,count,sum,min,max,p50,p99\n";
  for (const MetricRow& row : snapshot.rows) {
    out += row.name;
    out += ',';
    out += MetricKindName(row.kind);
    if (row.kind == MetricKind::kHistogram) {
      out += ",," + std::to_string(row.count) + ',' + Num(row.sum) + ',' +
             Num(row.min) + ',' + Num(row.max) + ',' + Num(row.p50) + ',' +
             Num(row.p99);
    } else {
      out += ',' + Num(row.value) + ",,,,,,";
    }
    out += '\n';
  }
  return out;
}

std::string
BenchJsonLine(const std::string& bench_name, const MetricsSnapshot& snapshot)
{
  std::string out = "{\"bench\":\"" + bench_name + "\"";
  out += ",\"sim_time_s\":" + Num(snapshot.sim_time_seconds);
  out += ",\"metrics\":{";
  bool first = true;
  for (const MetricRow& row : snapshot.rows) {
    if (!first)
      out += ',';
    first = false;
    out += "\"" + row.name + "\":" + MetricJsonObject(row);
  }
  out += "}}";
  return out;
}

bool
AppendLine(const std::string& path, const std::string& line)
{
  std::ofstream file(path, std::ios::app);
  if (!file)
    return false;
  file << line << '\n';
  return static_cast<bool>(file);
}

bool
WriteFile(const std::string& path, const std::string& content)
{
  std::ofstream file(path, std::ios::trunc);
  if (!file)
    return false;
  file << content;
  return static_cast<bool>(file);
}

std::string
SummaryTable(const MetricsSnapshot& snapshot, const ReactionTracer* tracer)
{
  char line[200];
  std::string out;
  out += "--- metrics @ t=" + Num(snapshot.sim_time_seconds) + " s ---\n";
  bool header_done = false;
  for (const MetricRow& row : snapshot.rows) {
    if (row.kind != MetricKind::kHistogram)
      continue;
    if (!header_done) {
      std::snprintf(line, sizeof(line), "%-32s %10s %12s %12s %12s\n",
                    "histogram", "count", "p50", "p99", "max");
      out += line;
      header_done = true;
    }
    std::snprintf(line, sizeof(line), "%-32s %10llu %12.4g %12.4g %12.4g\n",
                  row.name.c_str(),
                  static_cast<unsigned long long>(row.count), row.p50,
                  row.p99, row.max);
    out += line;
  }
  header_done = false;
  for (const MetricRow& row : snapshot.rows) {
    if (row.kind == MetricKind::kHistogram)
      continue;
    if (!header_done) {
      std::snprintf(line, sizeof(line), "%-32s %10s %12s\n", "scalar", "kind",
                    "value");
      out += line;
      header_done = true;
    }
    std::snprintf(line, sizeof(line), "%-32s %10s %12.6g\n", row.name.c_str(),
                  MetricKindName(row.kind), row.value);
    out += line;
  }
  if (tracer == nullptr)
    return out;

  out += "--- reaction traces (budget " + Num(tracer->config().budget.value()) +
         " s) ---\n";
  if (tracer->traces().empty()) {
    out += "(no overload episodes)\n";
    return out;
  }
  std::snprintf(line, sizeof(line),
                "%5s %4s %8s %8s %8s %8s %10s %7s\n", "trace", "ups",
                "publish", "observe", "decide", "actuate", "end-to-end",
                "verdict");
  out += line;
  for (const ReactionTrace& trace : tracer->traces()) {
    if (!trace.complete) {
      std::snprintf(line, sizeof(line), "%5llu %4d %8.3f %8.3f %8s %8s %10s %7s\n",
                    static_cast<unsigned long long>(trace.id),
                    trace.ups_index,
                    trace.StageLatency(ReactionStage::kPublish).value(),
                    trace.StageLatency(ReactionStage::kObserve).value(), "-",
                    "-", "-", "open");
      out += line;
      continue;
    }
    std::snprintf(line, sizeof(line),
                  "%5llu %4d %8.3f %8.3f %8.3f %8.3f %10.3f %7s\n",
                  static_cast<unsigned long long>(trace.id), trace.ups_index,
                  trace.StageLatency(ReactionStage::kPublish).value(),
                  trace.StageLatency(ReactionStage::kObserve).value(),
                  trace.StageLatency(ReactionStage::kDecide).value(),
                  trace.StageLatency(ReactionStage::kActuate).value(),
                  trace.EndToEnd().value(),
                  trace.WithinBudget() ? "OK" : "OVER");
    out += line;
  }
  return out;
}

}  // namespace flex::obs
