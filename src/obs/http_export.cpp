#include "http_export.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/thread_pool.hpp"
#include "obs/log.hpp"

namespace flex::obs {

namespace {

/**
 * Shortest round-trippable formatting shared with the flight-recorder
 * JSONL exporter, so numbers compare clean across a serialize/parse
 * cycle.
 */
std::string
Num(double value)
{
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

/** Prometheus label-value escaping: backslash, double quote, newline. */
std::string
EscapeLabelValue(const std::string& value)
{
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/** JSON string escaping (mirrors the flight-recorder idiom). */
std::string
EscapeJson(const std::string& text)
{
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/** Finds `"key":` in a single-line JSON object; npos when absent. */
std::size_t
FindKey(const std::string& line, const char* key)
{
  const std::string needle = std::string("\"") + key + "\":";
  return line.find(needle);
}

bool
ParseNumberField(const std::string& line, const char* key, double* out)
{
  const std::size_t at = FindKey(line, key);
  if (at == std::string::npos)
    return false;
  const std::size_t start = at + std::strlen(key) + 3;
  char* end = nullptr;
  const double value = std::strtod(line.c_str() + start, &end);
  if (end == line.c_str() + start)
    return false;
  *out = value;
  return true;
}

bool
ParseBoolField(const std::string& line, const char* key, bool* out)
{
  const std::size_t at = FindKey(line, key);
  if (at == std::string::npos)
    return false;
  const std::size_t start = at + std::strlen(key) + 3;
  if (line.compare(start, 4, "true") == 0) {
    *out = true;
    return true;
  }
  if (line.compare(start, 5, "false") == 0) {
    *out = false;
    return true;
  }
  return false;
}

/**
 * Renders one full Histogram as a Prometheus histogram family:
 * cumulative `_bucket{le=...}` series ending at `+Inf`, plus `_sum`
 * and `_count`. @p labels is a pre-rendered `key="value"` list (may be
 * empty) merged into every series.
 */
void
AppendHistogramSeries(std::ostringstream& out, const std::string& name,
                      const std::string& labels, const Histogram& histogram)
{
  const std::vector<double>& edges = histogram.edges();
  const std::vector<std::uint64_t>& counts = histogram.bucket_counts();
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < edges.size(); ++b) {
    cumulative += counts[b];
    out << name << "_bucket{" << labels << (labels.empty() ? "" : ",")
        << "le=\"" << Num(edges[b]) << "\"} " << cumulative << "\n";
  }
  out << name << "_bucket{" << labels << (labels.empty() ? "" : ",")
      << "le=\"+Inf\"} " << histogram.count() << "\n";
  out << name << "_sum";
  if (!labels.empty())
    out << "{" << labels << "}";
  out << " " << Num(histogram.sum()) << "\n";
  out << name << "_count";
  if (!labels.empty())
    out << "{" << labels << "}";
  out << " " << histogram.count() << "\n";
}

}  // namespace

void
LiveHub::PublishMetrics(const MetricsSnapshot& snapshot)
{
  {
    std::lock_guard<std::mutex> lock(mu_);
    metrics_ = snapshot;
  }
  publishes_.fetch_add(1, std::memory_order_relaxed);
}

MetricsSnapshot
LiveHub::LatestMetrics() const
{
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_;
}

void
LiveHub::PublishTraces(const std::vector<ReactionTrace>& traces,
                       std::size_t tail)
{
  const std::size_t keep = traces.size() < tail ? traces.size() : tail;
  std::vector<ReactionTrace> window(traces.end() - static_cast<std::ptrdiff_t>(keep),
                                    traces.end());
  {
    std::lock_guard<std::mutex> lock(mu_);
    traces_ = std::move(window);
  }
  publishes_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<ReactionTrace>
LiveHub::LatestTraces() const
{
  std::lock_guard<std::mutex> lock(mu_);
  return traces_;
}

void
LiveHub::PublishRecorderTail(const FlightRecorder& recorder, std::size_t tail)
{
  std::vector<FlightRecord> records = recorder.Records();
  if (records.size() > tail)
    records.erase(records.begin(),
                  records.end() - static_cast<std::ptrdiff_t>(tail));
  {
    std::lock_guard<std::mutex> lock(mu_);
    records_ = std::move(records);
  }
  publishes_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<FlightRecord>
LiveHub::LatestRecords() const
{
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

void
LiveHub::PublishHealth(const HealthSnapshot& health)
{
  {
    std::lock_guard<std::mutex> lock(mu_);
    health_ = health;
  }
  publishes_.fetch_add(1, std::memory_order_relaxed);
}

HealthSnapshot
LiveHub::LatestHealth() const
{
  std::lock_guard<std::mutex> lock(mu_);
  return health_;
}

void
LiveHub::PublishAlerts(const AlertsSnapshot& alerts)
{
  {
    std::lock_guard<std::mutex> lock(mu_);
    alerts_ = alerts;
  }
  publishes_.fetch_add(1, std::memory_order_relaxed);
}

AlertsSnapshot
LiveHub::LatestAlerts() const
{
  std::lock_guard<std::mutex> lock(mu_);
  return alerts_;
}

void
LiveHub::PublishSeries(const TimeSeriesSnapshot& series)
{
  {
    std::lock_guard<std::mutex> lock(mu_);
    series_ = series;
  }
  publishes_.fetch_add(1, std::memory_order_relaxed);
}

TimeSeriesSnapshot
LiveHub::LatestSeries() const
{
  std::lock_guard<std::mutex> lock(mu_);
  return series_;
}

std::string
PrometheusName(const std::string& name)
{
  std::string out = "flex_";
  out.reserve(name.size() + out.size());
  for (const char c : name) {
    const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += legal ? c : '_';
  }
  return out;
}

std::string
SnapshotToPrometheus(const MetricsSnapshot& snapshot)
{
  std::ostringstream out;
  out << "# TYPE flex_sim_time_seconds gauge\n";
  out << "flex_sim_time_seconds " << Num(snapshot.sim_time_seconds) << "\n";
  for (const MetricRow& row : snapshot.rows) {
    const std::string name = PrometheusName(row.name);
    switch (row.kind) {
      case MetricKind::kCounter: {
        // Counters follow the convention of a `_total` suffix; names
        // that already end in `_total` (log.suppressed_total) keep it.
        const std::string counter_name =
            name.size() >= 6 && name.compare(name.size() - 6, 6, "_total") == 0
                ? name
                : name + "_total";
        out << "# TYPE " << counter_name << " counter\n";
        out << counter_name << " " << Num(row.value) << "\n";
        break;
      }
      case MetricKind::kGauge:
        out << "# TYPE " << name << " gauge\n";
        out << name << " " << Num(row.value) << "\n";
        break;
      case MetricKind::kHistogram:
        // Snapshot rows carry the summary (count/sum/quantiles), not
        // the bucket vector, so histogram rows export as a Prometheus
        // summary family. Full bucketed exposition is reserved for the
        // profiler's live Histogram objects (see RenderMetrics).
        out << "# TYPE " << name << " summary\n";
        out << name << "{quantile=\"0.5\"} " << Num(row.p50) << "\n";
        out << name << "{quantile=\"0.99\"} " << Num(row.p99) << "\n";
        out << name << "_sum " << Num(row.sum) << "\n";
        out << name << "_count " << row.count << "\n";
        break;
    }
  }
  return out.str();
}

std::string
ReactionTraceToJson(const ReactionTrace& trace)
{
  std::ostringstream out;
  out << "{\"id\":" << trace.id
      << ",\"replica\":" << trace.detecting_replica
      << ",\"ups\":" << trace.ups_index
      << ",\"actions\":" << trace.actions
      << ",\"dup_detections\":" << trace.duplicate_detections
      << ",\"dup_waves\":" << trace.duplicate_waves
      << ",\"sampled_at\":" << Num(trace.sampled_at.value())
      << ",\"delivered_at\":" << Num(trace.delivered_at.value())
      << ",\"detected_at\":" << Num(trace.detected_at.value())
      << ",\"decided_at\":" << Num(trace.decided_at.value())
      << ",\"enforced_at\":" << Num(trace.enforced_at.value())
      << ",\"complete\":" << (trace.complete ? "true" : "false")
      << ",\"closed\":" << (trace.closed ? "true" : "false")
      << ",\"budget\":" << Num(trace.budget.value()) << "}";
  return out.str();
}

bool
ParseReactionTraceJson(const std::string& line, ReactionTrace* out)
{
  ReactionTrace trace;
  double number = 0.0;
  if (!ParseNumberField(line, "id", &number))
    return false;
  trace.id = static_cast<std::uint64_t>(number);
  if (!ParseNumberField(line, "replica", &number))
    return false;
  trace.detecting_replica = static_cast<int>(number);
  if (!ParseNumberField(line, "ups", &number))
    return false;
  trace.ups_index = static_cast<int>(number);
  if (!ParseNumberField(line, "actions", &number))
    return false;
  trace.actions = static_cast<int>(number);
  if (!ParseNumberField(line, "dup_detections", &number))
    return false;
  trace.duplicate_detections = static_cast<int>(number);
  if (!ParseNumberField(line, "dup_waves", &number))
    return false;
  trace.duplicate_waves = static_cast<int>(number);
  if (!ParseNumberField(line, "sampled_at", &number))
    return false;
  trace.sampled_at = Seconds(number);
  if (!ParseNumberField(line, "delivered_at", &number))
    return false;
  trace.delivered_at = Seconds(number);
  if (!ParseNumberField(line, "detected_at", &number))
    return false;
  trace.detected_at = Seconds(number);
  if (!ParseNumberField(line, "decided_at", &number))
    return false;
  trace.decided_at = Seconds(number);
  if (!ParseNumberField(line, "enforced_at", &number))
    return false;
  trace.enforced_at = Seconds(number);
  if (!ParseBoolField(line, "complete", &trace.complete))
    return false;
  if (!ParseBoolField(line, "closed", &trace.closed))
    return false;
  if (!ParseNumberField(line, "budget", &number))
    return false;
  trace.budget = Seconds(number);
  *out = trace;
  return true;
}

bool
HttpQueryParam(const std::string& query, const std::string& key,
               std::string* value)
{
  std::size_t at = 0;
  while (at < query.size()) {
    std::size_t end = query.find('&', at);
    if (end == std::string::npos)
      end = query.size();
    const std::size_t eq = query.find('=', at);
    if (eq != std::string::npos && eq < end &&
        query.compare(at, eq - at, key) == 0) {
      *value = query.substr(eq + 1, end - eq - 1);
      return true;
    }
    if (eq == std::string::npos || eq >= end) {
      if (query.compare(at, end - at, key) == 0) {
        value->clear();
        return true;
      }
    }
    at = end + 1;
  }
  return false;
}

ObservabilityServer::ObservabilityServer(LiveHub& hub,
                                         ObservabilityServerConfig config)
    : hub_(hub), config_(std::move(config)), http_(config_.http)
{
  http_.Route("/metrics", [this](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = RenderMetrics();
    return response;
  });
  http_.Route("/healthz", [this](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = RenderHealth(&response.status);
    return response;
  });
  http_.Route("/trace", [this](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = RenderTrace();
    return response;
  });
  http_.Route("/recorder", [this](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/x-ndjson";
    response.body = RenderRecorder();
    return response;
  });
  http_.Route("/alerts", [this](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = RenderAlerts();
    return response;
  });
  http_.Route("/query", [this](const HttpRequest& request) {
    HttpResponse response;
    response.content_type = "application/json";
    std::string metric;
    if (!HttpQueryParam(request.query, "metric", &metric) ||
        metric.empty()) {
      response.status = 400;
      response.body = "{\"error\":\"missing metric parameter\"}\n";
      return response;
    }
    std::string text;
    double window_s = 0.0;
    double resolution_s = 0.0;
    if (HttpQueryParam(request.query, "window", &text))
      window_s = std::strtod(text.c_str(), nullptr);
    if (HttpQueryParam(request.query, "res", &text))
      resolution_s = std::strtod(text.c_str(), nullptr);
    response.body =
        RenderQuery(metric, window_s, resolution_s, &response.status);
    return response;
  });
}

void
ObservabilityServer::AddLiveGauge(std::string name,
                                  std::function<double()> sample)
{
  live_gauges_.emplace_back(std::move(name), std::move(sample));
}

void
ObservabilityServer::WireThreadPool(const common::ThreadPool& pool)
{
  AddLiveGauge("flex_pool_size", [&pool] {
    return static_cast<double>(pool.size());
  });
  AddLiveGauge("flex_pool_running", [&pool] {
    return static_cast<double>(pool.running_count());
  });
  AddLiveGauge("flex_pool_queued", [&pool] {
    return static_cast<double>(pool.queued_count());
  });
  AddLiveGauge("flex_pool_utilization", [&pool] {
    return static_cast<double>(pool.running_count()) /
           static_cast<double>(pool.size());
  });
  AddLiveGauge("flex_pool_steals", [&pool] {
    return static_cast<double>(pool.steal_count());
  });
}

std::string
ObservabilityServer::RenderMetrics() const
{
  std::ostringstream out;

  // Identity first: a constant-1 info series carrying the run labels.
  out << "# TYPE flex_build_info gauge\n";
  out << "flex_build_info{";
  bool first = true;
  for (const auto& [key, value] : config_.run_info) {
    if (!first)
      out << ",";
    first = false;
    out << PrometheusName(key).substr(5) << "=\"" << EscapeLabelValue(value)
        << "\"";
  }
  out << "} 1\n";

  out << SnapshotToPrometheus(hub_.LatestMetrics());

  // Live process gauges: sampled on this (the server) thread from
  // atomics only, per the AddLiveGauge contract.
  for (const auto& [name, sample] : live_gauges_) {
    out << "# TYPE " << name << " gauge\n";
    out << name << " " << Num(sample()) << "\n";
  }

  // Prometheus-convention ALERTS series: one constant-1 sample per
  // pending/firing rule, plus rollup gauges, from the last published
  // alert-engine snapshot.
  const AlertsSnapshot alerts = hub_.LatestAlerts();
  if (!alerts.statuses.empty()) {
    out << "# TYPE ALERTS gauge\n";
    for (const AlertStatus& status : alerts.statuses) {
      if (status.state == AlertState::kInactive)
        continue;
      out << "ALERTS{alertname=\"" << EscapeLabelValue(status.rule.name)
          << "\",severity=\"" << AlertSeverityName(status.rule.severity)
          << "\",alertstate=\"" << AlertStateName(status.state) << "\"} 1\n";
    }
    out << "# TYPE flex_alerts_firing gauge\n";
    out << "flex_alerts_firing " << alerts.firing << "\n";
    out << "# TYPE flex_alerts_pending gauge\n";
    out << "flex_alerts_pending " << alerts.pending << "\n";
  }

  out << "# TYPE flex_hub_publishes_total counter\n";
  out << "flex_hub_publishes_total " << hub_.publish_count() << "\n";
  out << "# TYPE flex_http_requests_total counter\n";
  out << "flex_http_requests_total " << http_.requests_served() << "\n";
  out << "# TYPE flex_log_suppressed_total counter\n";
  out << "flex_log_suppressed_total " << LogSuppressedTotal() << "\n";

  if (watchdog_ != nullptr) {
    const auto threads = watchdog_->SnapshotThreads();
    out << "# TYPE flex_watchdog_threads gauge\n";
    out << "flex_watchdog_threads " << threads.size() << "\n";
    out << "# TYPE flex_watchdog_stalled gauge\n";
    out << "flex_watchdog_stalled " << (watchdog_->any_stalled() ? 1 : 0)
        << "\n";
    out << "# TYPE flex_watchdog_stall_events_total counter\n";
    out << "flex_watchdog_stall_events_total " << watchdog_->stall_events()
        << "\n";
    out << "# TYPE flex_watchdog_silent_seconds gauge\n";
    for (const auto& thread : threads) {
      out << "flex_watchdog_silent_seconds{thread=\""
          << EscapeLabelValue(thread.name) << "\"} "
          << Num(thread.silent_seconds) << "\n";
    }
  }

  if (profiler_ != nullptr) {
    const auto phases = profiler_->Snapshot();
    if (!phases.empty()) {
      out << "# TYPE flex_phase_wall_microseconds histogram\n";
      for (const auto& row : phases) {
        const std::string labels =
            "phase=\"" + EscapeLabelValue(row.phase) + "\"";
        AppendHistogramSeries(out, "flex_phase_wall_microseconds", labels,
                              row.wall);
      }
      out << "# TYPE flex_phase_cpu_microseconds histogram\n";
      for (const auto& row : phases) {
        const std::string labels =
            "phase=\"" + EscapeLabelValue(row.phase) + "\"";
        AppendHistogramSeries(out, "flex_phase_cpu_microseconds", labels,
                              row.cpu);
      }
      out << "# TYPE flex_phase_threads gauge\n";
      for (const auto& row : phases) {
        out << "flex_phase_threads{phase=\"" << EscapeLabelValue(row.phase)
            << "\"} " << row.threads << "\n";
      }
    }
  }

  return out.str();
}

std::string
ObservabilityServer::RenderHealth(int* http_status) const
{
  const HealthSnapshot health = hub_.LatestHealth();
  const AlertsSnapshot alerts = hub_.LatestAlerts();
  const bool stalled = watchdog_ != nullptr && watchdog_->any_stalled();
  // Firing warn/info alerts are reported but do not degrade the probe;
  // only page severity (like a violation or a stall) answers 503.
  const bool paging =
      alerts.firing > 0 && alerts.worst_firing == AlertSeverity::kPage;
  const bool ok = health.ok && !stalled && !paging;
  if (http_status != nullptr)
    *http_status = ok ? 200 : 503;

  std::ostringstream out;
  out << "{\"ok\":" << (ok ? "true" : "false")
      << ",\"sim_time_seconds\":" << Num(health.sim_time_seconds)
      << ",\"violations\":" << health.violations
      << ",\"detail\":\"" << EscapeJson(health.detail) << "\""
      << ",\"stalled\":" << (stalled ? "true" : "false")
      << ",\"alerts_firing\":" << alerts.firing
      << ",\"alerts_pending\":" << alerts.pending
      << ",\"worst_firing\":\""
      << (alerts.firing > 0 ? AlertSeverityName(alerts.worst_firing)
                            : "none")
      << "\"";
  if (watchdog_ != nullptr) {
    out << ",\"forensic_hint\":\""
        << EscapeJson(watchdog_->forensic_hint()) << "\"";
    out << ",\"threads\":[";
    bool first = true;
    for (const auto& thread : watchdog_->SnapshotThreads()) {
      if (!first)
        out << ",";
      first = false;
      out << "{\"name\":\"" << EscapeJson(thread.name) << "\""
          << ",\"silent_seconds\":" << Num(thread.silent_seconds)
          << ",\"stalled\":" << (thread.stalled ? "true" : "false")
          << ",\"done\":" << (thread.done ? "true" : "false")
          << ",\"beats\":" << thread.beats << "}";
    }
    out << "]";
  }
  out << "}\n";
  return out.str();
}

std::string
ObservabilityServer::RenderTrace() const
{
  const std::vector<ReactionTrace> traces = hub_.LatestTraces();
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < traces.size(); ++i) {
    if (i > 0)
      out << ",\n ";
    out << ReactionTraceToJson(traces[i]);
  }
  out << "]\n";
  return out.str();
}

std::string
ObservabilityServer::RenderRecorder() const
{
  return RecordsToJsonl(hub_.LatestRecords());
}

std::string
ObservabilityServer::RenderAlerts() const
{
  const AlertsSnapshot alerts = hub_.LatestAlerts();
  std::ostringstream out;
  out << "{\"sim_time_seconds\":" << Num(alerts.sim_time_seconds)
      << ",\"firing\":" << alerts.firing
      << ",\"pending\":" << alerts.pending
      << ",\"worst_firing\":\""
      << (alerts.firing > 0 ? AlertSeverityName(alerts.worst_firing)
                            : "none")
      << "\",\"alerts\":[";
  for (std::size_t i = 0; i < alerts.statuses.size(); ++i) {
    const AlertStatus& status = alerts.statuses[i];
    if (i > 0)
      out << ",";
    out << "\n {\"name\":\"" << EscapeJson(status.rule.name) << "\""
        << ",\"severity\":\"" << AlertSeverityName(status.rule.severity)
        << "\",\"kind\":\"" << AlertRuleKindName(status.rule.kind)
        << "\",\"metric\":\"" << EscapeJson(status.rule.metric)
        << "\",\"state\":\"" << AlertStateName(status.state)
        << "\",\"since_s\":" << Num(status.since_s)
        << ",\"last_value\":" << Num(status.last_value)
        << ",\"fire_count\":" << status.fire_count
        << ",\"description\":\"" << EscapeJson(status.rule.description)
        << "\"}";
  }
  out << "],\"history\":[";
  for (std::size_t i = 0; i < alerts.timeline.size(); ++i) {
    const AlertTransition& edge = alerts.timeline[i];
    if (i > 0)
      out << ",";
    out << "\n {\"t\":" << Num(edge.t) << ",\"rule\":\""
        << EscapeJson(edge.rule) << "\",\"from\":\""
        << AlertStateName(edge.from) << "\",\"to\":\""
        << AlertStateName(edge.to) << "\",\"value\":" << Num(edge.value)
        << ",\"message\":\"" << EscapeJson(edge.message) << "\"}";
  }
  out << "]}\n";
  return out.str();
}

std::string
ObservabilityServer::RenderQuery(const std::string& metric, double window_s,
                                 double resolution_s,
                                 int* http_status) const
{
  const TimeSeriesSnapshot series = hub_.LatestSeries();
  const SeriesSnapshot* found = series.Find(metric);
  if (found == nullptr) {
    if (http_status != nullptr)
      *http_status = 404;
    return "{\"error\":\"unknown metric: " + EscapeJson(metric) + "\"}\n";
  }
  if (http_status != nullptr)
    *http_status = 200;

  std::ostringstream out;
  out << "{\"metric\":\"" << EscapeJson(metric) << "\",\"kind\":\""
      << MetricKindName(found->kind) << "\",\"window\":" << Num(window_s);
  if (resolution_s <= 0.0 || found->tiers.empty()) {
    // Raw points. The published snapshot holds the full retained ring;
    // the window is applied here, relative to the newest point.
    const double latest = found->raw.empty() ? 0.0 : found->raw.back().t;
    const double cutoff = window_s > 0.0 ? latest - window_s : -1.0;
    out << ",\"res\":0,\"points\":[";
    bool first = true;
    for (const RawPoint& point : found->raw) {
      if (window_s > 0.0 && point.t < cutoff)
        continue;
      if (!first)
        out << ",";
      first = false;
      out << "[" << Num(point.t) << "," << Num(point.value) << "]";
    }
    out << "]}\n";
    return out.str();
  }
  const SeriesSnapshot::TierData* tier = &found->tiers.back();
  for (const SeriesSnapshot::TierData& candidate : found->tiers) {
    if (candidate.resolution_s >= resolution_s) {
      tier = &candidate;
      break;
    }
  }
  const double latest = tier->points.empty() ? 0.0 : tier->points.back().t;
  const double cutoff = window_s > 0.0 ? latest - window_s : -1.0;
  out << ",\"res\":" << Num(tier->resolution_s) << ",\"points\":[";
  bool first = true;
  for (const AggPoint& point : tier->points) {
    if (window_s > 0.0 && point.t < cutoff)
      continue;
    if (!first)
      out << ",";
    first = false;
    out << "[" << Num(point.t) << "," << Num(point.min) << ","
        << Num(point.max) << "," << Num(point.mean) << "," << Num(point.last)
        << "," << point.count << "]";
  }
  out << "]}\n";
  return out.str();
}

void
UpdateLogMetrics(MetricsRegistry& metrics)
{
  Counter& counter = metrics.counter("log.suppressed_total");
  const double total = static_cast<double>(LogSuppressedTotal());
  if (total > counter.value())
    counter.Increment(total - counter.value());
}

}  // namespace flex::obs
