/**
 * @file
 * Exporters: JSONL reaction traces, JSON/CSV metrics snapshots, and the
 * human-readable end-of-run summary table.
 *
 * The JSON metrics format is line-oriented — one metric object per line
 * in a fixed key order — so BENCH_*.json trajectory files stay diffable
 * across runs and shell tooling (scripts/check_budget.sh) can extract
 * values without a JSON parser. Numbers render with %.9g, which
 * round-trips the simulated-time doubles bit-identically for equal
 * seeds.
 */
#ifndef FLEX_OBS_EXPORT_HPP_
#define FLEX_OBS_EXPORT_HPP_

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace flex::obs {

/** One reaction trace as a single-line JSON object. */
std::string TraceToJson(const ReactionTrace& trace);

/** Every trace, one JSON object per line (JSONL). */
std::string TracesToJsonl(const ReactionTracer& tracer);

/** Pretty multi-line JSON: snapshot header + one metric per line. */
std::string SnapshotToJson(const MetricsSnapshot& snapshot);

/** CSV with a fixed header: name,kind,value,count,sum,min,max,p50,p99. */
std::string SnapshotToCsv(const MetricsSnapshot& snapshot);

/**
 * One compact JSON object (single line) tagging the snapshot with a
 * bench name — the unit appended to a BENCH_*.json trajectory file.
 */
std::string BenchJsonLine(const std::string& bench_name,
                          const MetricsSnapshot& snapshot);

/**
 * Appends @p line + '\n' to @p path (creating it if needed).
 * @return false on I/O failure.
 */
bool AppendLine(const std::string& path, const std::string& line);

/** Overwrites @p path with @p content. @return false on I/O failure. */
bool WriteFile(const std::string& path, const std::string& content);

/**
 * Human-readable end-of-run summary: histogram table (count / p50 /
 * p99 / max), counters and gauges, and — when a tracer is supplied —
 * the per-stage reaction breakdown of every completed trace against
 * the budget.
 */
std::string SummaryTable(const MetricsSnapshot& snapshot,
                         const ReactionTracer* tracer = nullptr);

}  // namespace flex::obs

#endif  // FLEX_OBS_EXPORT_HPP_
