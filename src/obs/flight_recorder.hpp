/**
 * @file
 * Always-on flight recorder: a fixed-capacity ring of compact records.
 *
 * Aircraft-style black box for the simulation. Instrumented components
 * (telemetry delivery, controller reactions, fault injection, invariant
 * checks, actuation commands) append one small structured record per
 * noteworthy event; the ring keeps only the most recent `capacity`
 * records, dropping oldest-first, so steady-state overhead is one
 * branch plus a bounded store regardless of run length. On a trigger —
 * an invariant violation, a blown reaction budget, or an explicit
 * request — the retained window is dumped into a forensic bundle (see
 * forensics.hpp) whose JSONL timeline can be diffed against a replay of
 * the same seed record-by-record.
 *
 * Records carry simulated time and only seed-deterministic payloads, so
 * two runs of one seed produce byte-identical timelines; sequence
 * numbers are assigned at Record() time and survive ring drops, which
 * is what lets a replay with a larger ring align against a bundle whose
 * early records were evicted.
 */
#ifndef FLEX_OBS_FLIGHT_RECORDER_HPP_
#define FLEX_OBS_FLIGHT_RECORDER_HPP_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace flex::obs {

/** What a flight record describes. */
enum class RecordKind {
  kAnnotation = 0,    ///< free-form marker (detail carries the text)
  kMeterSample,       ///< a UPS reading was delivered (a=ups, b=bus)
  kDetection,         ///< a replica flagged overdraw (a=replica, b=ups)
  kDecision,          ///< Algorithm 1 produced a wave (a=replica, value=n)
  kEnforced,          ///< a corrective wave fully landed (a=replica)
  kEpisodeClosed,     ///< the episode released (a=replica)
  kFaultBegin,        ///< an injected fault began (a=target)
  kFaultRepair,       ///< an injected fault was repaired (a=target)
  kViolation,         ///< the invariant monitor flagged a violation
  kBatteryTrip,       ///< a UPS battery exhausted its budget (a=ups)
  kRackCommand,       ///< an actuation command was issued (a=rack, b=kind)
  kAlert,             ///< an alert-rule edge (a=rule index, b=new state)
};

/** Stable lowercase kind name ("meter_sample", ...). */
const char* RecordKindName(RecordKind kind);

/** Parses a kind name; false when unknown. */
bool ParseRecordKind(const std::string& name, RecordKind* out);

/**
 * One compact record. The generic a/b/value payload keeps the struct
 * POD-sized; the per-kind meaning is documented on RecordKind. `detail`
 * is a short free-text tail (violation messages, fault descriptions)
 * and stays empty on hot-path kinds.
 */
struct FlightRecord {
  std::uint64_t sequence = 0;  ///< monotone, assigned at Record() time
  double t = 0.0;              ///< simulated seconds
  RecordKind kind = RecordKind::kAnnotation;
  int a = -1;
  int b = -1;
  double value = 0.0;
  std::string detail;
};

/** Recorder tuning. */
struct RecorderConfig {
  /** Ring capacity in records; the window a forensic dump can see. */
  std::size_t capacity = 4096;
};

/**
 * The ring buffer. Single-threaded like the simulation; Record() is a
 * bounded store with no allocation once the ring has filled (detail
 * strings aside), so it is safe to call from per-event hooks.
 */
class FlightRecorder {
 public:
  explicit FlightRecorder(RecorderConfig config = {});

  /** Appends one record stamped @p t; evicts the oldest when full. */
  void Record(Seconds t, RecordKind kind, int a = -1, int b = -1,
              double value = 0.0, std::string detail = {});

  /** Retained records, oldest first. */
  std::vector<FlightRecord> Records() const;

  /** Records evicted so far (total recorded = dropped + size). */
  std::uint64_t dropped_count() const { return dropped_; }

  /** Sequence the next Record() call will be assigned. */
  std::uint64_t next_sequence() const { return next_sequence_; }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return ring_.size(); }

  /** Empties the ring; sequence numbering continues monotonically. */
  void Clear();

 private:
  std::vector<FlightRecord> ring_;
  std::size_t head_ = 0;  ///< next write slot
  std::size_t size_ = 0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t dropped_ = 0;
};

/** One record as a single-line JSON object with fixed key order. */
std::string RecordToJson(const FlightRecord& record);

/** All records, one JSON object per line (JSONL). */
std::string RecordsToJsonl(const std::vector<FlightRecord>& records);

/** Parses one RecordToJson line; false on malformed input. */
bool ParseRecordJson(const std::string& line, FlightRecord* out);

/**
 * Parses a JSONL timeline (blank lines skipped). Returns false and
 * fills @p error on the first malformed line.
 */
bool ParseRecordsJsonl(const std::string& jsonl,
                       std::vector<FlightRecord>* out, std::string* error);

/** First mismatch between an expected and a replayed timeline. */
struct RecordDivergence {
  std::uint64_t sequence = 0;
  /** Which field differed: "missing", "kind", "t", "a", "b", "value", "detail". */
  std::string field;
  std::string expected;
  std::string actual;

  /** One-line human-readable description. */
  std::string Summary() const;
};

/**
 * Compares @p expected (e.g. a bundle's timeline) against @p actual
 * (e.g. a replay's), aligned by sequence number. Records in @p actual
 * with sequences outside @p expected's range are ignored — a replay
 * with a larger ring legitimately retains more history. Doubles are
 * compared through the exporter's %.9g formatting so a timeline that
 * went through one serialize/parse round trip compares clean.
 */
std::optional<RecordDivergence> FirstDivergence(
    const std::vector<FlightRecord>& expected,
    const std::vector<FlightRecord>& actual);

}  // namespace flex::obs

#endif  // FLEX_OBS_FLIGHT_RECORDER_HPP_
