#include "log.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/event_queue.hpp"

namespace flex::obs {

namespace {

struct LogState {
  LogLevel level;
  const sim::EventQueue* clock = nullptr;
  LogSink sink;

  LogState()
      : level(ParseLogLevel(std::getenv("FLEX_LOG_LEVEL"), LogLevel::kWarn))
  {
  }
};

LogState&
State()
{
  static LogState state;
  return state;
}

}  // namespace

const char*
LogLevelName(LogLevel level)
{
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

LogLevel
ParseLogLevel(const char* name, LogLevel fallback)
{
  if (name == nullptr || *name == '\0')
    return fallback;
  std::string lower;
  for (const char* p = name; *p != '\0'; ++p)
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  if (lower == "trace")
    return LogLevel::kTrace;
  if (lower == "debug")
    return LogLevel::kDebug;
  if (lower == "info")
    return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning")
    return LogLevel::kWarn;
  if (lower == "error")
    return LogLevel::kError;
  if (lower == "off" || lower == "none" || lower == "quiet")
    return LogLevel::kOff;
  return fallback;
}

LogLevel
GetLogLevel()
{
  return State().level;
}

void
SetLogLevel(LogLevel level)
{
  State().level = level;
}

void
SetLogClock(const sim::EventQueue* clock)
{
  State().clock = clock;
}

void
SetLogSink(LogSink sink)
{
  State().sink = std::move(sink);
}

void
LogMessage(LogLevel level, const char* component, const char* format, ...)
{
  char message[512];
  std::va_list args;
  va_start(args, format);
  std::vsnprintf(message, sizeof(message), format, args);
  va_end(args);

  char line[640];
  const LogState& state = State();
  if (state.clock != nullptr) {
    std::snprintf(line, sizeof(line), "[%s] t=%.3f %s: %s",
                  LogLevelName(level), state.clock->Now().value(),
                  component != nullptr ? component : "-", message);
  } else {
    std::snprintf(line, sizeof(line), "[%s] %s: %s", LogLevelName(level),
                  component != nullptr ? component : "-", message);
  }
  if (state.sink) {
    state.sink(level, line);
    return;
  }
  std::fprintf(stderr, "%s\n", line);
}

}  // namespace flex::obs
