#include "log.hpp"

#include <atomic>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/event_queue.hpp"

namespace flex::obs {

namespace {

/**
 * Process-wide suppression tally across every FLEX_LOG_RATE_LIMITED
 * site. Atomic because the HTTP exporter reads it from its own thread
 * while sim threads keep suppressing.
 */
std::atomic<std::uint64_t> g_suppressed_total{0};

struct LogState {
  LogLevel level;
  const sim::EventQueue* clock = nullptr;
  LogSink sink;
  std::FILE* file = nullptr;
  bool file_checked = false;  ///< FLEX_LOG_FILE consulted already?

  LogState()
      : level(ParseLogLevel(std::getenv("FLEX_LOG_LEVEL"), LogLevel::kWarn))
  {
  }

  /** The file sink, lazily opened from FLEX_LOG_FILE on first use. */
  std::FILE*
  File()
  {
    if (!file_checked) {
      file_checked = true;
      const char* path = std::getenv("FLEX_LOG_FILE");
      if (path != nullptr && path[0] != '\0')
        file = std::fopen(path, "a");
    }
    return file;
  }
};

LogState&
State()
{
  static LogState state;
  return state;
}

}  // namespace

const char*
LogLevelName(LogLevel level)
{
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

LogLevel
ParseLogLevel(const char* name, LogLevel fallback)
{
  if (name == nullptr || *name == '\0')
    return fallback;
  std::string lower;
  for (const char* p = name; *p != '\0'; ++p)
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  if (lower == "trace")
    return LogLevel::kTrace;
  if (lower == "debug")
    return LogLevel::kDebug;
  if (lower == "info")
    return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning")
    return LogLevel::kWarn;
  if (lower == "error")
    return LogLevel::kError;
  if (lower == "off" || lower == "none" || lower == "quiet")
    return LogLevel::kOff;
  return fallback;
}

LogLevel
GetLogLevel()
{
  return State().level;
}

void
SetLogLevel(LogLevel level)
{
  State().level = level;
}

void
SetLogClock(const sim::EventQueue* clock)
{
  State().clock = clock;
}

const sim::EventQueue*
GetLogClock()
{
  return State().clock;
}

void
SetLogSink(LogSink sink)
{
  State().sink = std::move(sink);
}

bool
SetLogFile(const std::string& path)
{
  LogState& state = State();
  if (state.file != nullptr) {
    std::fclose(state.file);
    state.file = nullptr;
  }
  state.file_checked = true;  // explicit call overrides FLEX_LOG_FILE
  if (path.empty())
    return true;
  state.file = std::fopen(path.c_str(), "a");
  return state.file != nullptr;
}

void
LogMessage(LogLevel level, const char* component, const char* format, ...)
{
  char message[512];
  std::va_list args;
  va_start(args, format);
  std::vsnprintf(message, sizeof(message), format, args);
  va_end(args);

  char line[640];
  LogState& state = State();
  if (state.clock != nullptr) {
    std::snprintf(line, sizeof(line), "[%s] t=%.3f %s: %s",
                  LogLevelName(level), state.clock->Now().value(),
                  component != nullptr ? component : "-", message);
  } else {
    std::snprintf(line, sizeof(line), "[%s] %s: %s", LogLevelName(level),
                  component != nullptr ? component : "-", message);
  }
  // The file sink tees: it sees every record regardless of sink
  // redirection, so forensic log files stay complete under tests.
  if (std::FILE* file = state.File(); file != nullptr) {
    std::fprintf(file, "%s\n", line);
    std::fflush(file);
  }
  if (state.sink) {
    state.sink(level, line);
    return;
  }
  std::fprintf(stderr, "%s\n", line);
}

bool
LogRateLimiter::Admit()
{
  const sim::EventQueue* clock = GetLogClock();
  if (clock != nullptr) {
    const double now = clock->Now().value();
    if (!has_emitted_ || now - last_emit_t_ >= min_interval_s_ ||
        now < last_emit_t_) {  // clock rebound to a fresh queue
      has_emitted_ = true;
      last_emit_t_ = now;
      calls_since_emit_ = 0;
      suppressed_ = 0;
      return true;
    }
  } else if (calls_since_emit_ == 0 ||
             calls_since_emit_ >= every_nth_) {
    has_emitted_ = true;
    calls_since_emit_ = 1;
    suppressed_ = 0;
    return true;
  }
  ++calls_since_emit_;
  ++suppressed_;
  ++total_suppressed_;
  g_suppressed_total.fetch_add(1, std::memory_order_relaxed);
  return false;
}

std::uint64_t
LogSuppressedTotal()
{
  return g_suppressed_total.load(std::memory_order_relaxed);
}

}  // namespace flex::obs
