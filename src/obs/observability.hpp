/**
 * @file
 * Umbrella handle bundling the metrics registry and reaction tracer.
 *
 * Components take a raw `Observability*` in their config structs (null
 * means "not instrumented" and costs one branch per hook). The harness
 * that owns the event queue binds it once via BindClock so snapshots
 * and log lines carry simulated time.
 */
#ifndef FLEX_OBS_OBSERVABILITY_HPP_
#define FLEX_OBS_OBSERVABILITY_HPP_

#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace flex::sim {
class EventQueue;
}  // namespace flex::sim

namespace flex::obs {

/** Observability tuning. */
struct ObservabilityConfig {
  TracerConfig tracer;
  RecorderConfig recorder;
};

/**
 * Owns one MetricsRegistry + one ReactionTracer + one FlightRecorder,
 * wired together.
 */
class Observability {
 public:
  explicit Observability(ObservabilityConfig config = {});

  /**
   * Points the registry (and the logger's t= stamp) at @p queue so
   * snapshots carry simulated time. Call once the owning harness has
   * built its queue; safe to rebind.
   */
  void BindClock(const sim::EventQueue& queue);

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  ReactionTracer& tracer() { return tracer_; }
  const ReactionTracer& tracer() const { return tracer_; }

  FlightRecorder& recorder() { return recorder_; }
  const FlightRecorder& recorder() const { return recorder_; }

 private:
  MetricsRegistry metrics_;
  FlightRecorder recorder_;
  ReactionTracer tracer_;
};

}  // namespace flex::obs

#endif  // FLEX_OBS_OBSERVABILITY_HPP_
