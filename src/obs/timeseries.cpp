#include "obs/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/hash.hpp"

namespace flex::obs {

namespace {

std::string
Num(double value)
{
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

}  // namespace

const SeriesSnapshot*
TimeSeriesSnapshot::Find(const std::string& name) const
{
  const auto it =
      std::lower_bound(series.begin(), series.end(), name,
                       [](const SeriesSnapshot& s, const std::string& n) {
                         return s.name < n;
                       });
  if (it == series.end() || it->name != name)
    return nullptr;
  return &*it;
}

TimeSeriesStore::TimeSeriesStore(TimeSeriesConfig config)
    : config_(std::move(config))
{
  if (config_.raw_capacity == 0)
    config_.raw_capacity = 1;
  for (TierConfig& tier : config_.tiers) {
    if (tier.resolution_s <= 0.0)
      tier.resolution_s = 1.0;
    if (tier.capacity == 0)
      tier.capacity = 1;
  }
  series_.reserve(config_.max_series);
}

TimeSeriesStore::Series*
TimeSeriesStore::FindSeries(const std::string& name)
{
  const auto it = index_.find(name);
  return it == index_.end() ? nullptr : &series_[it->second];
}

const TimeSeriesStore::Series*
TimeSeriesStore::FindSeries(const std::string& name) const
{
  const auto it = index_.find(name);
  return it == index_.end() ? nullptr : &series_[it->second];
}

void
TimeSeriesStore::Sample(const MetricsSnapshot& snapshot)
{
  // Harnesses publish once more at shutdown without advancing the
  // clock; re-sampling that tick would skew counts and fingerprints.
  if (snapshot.sim_time_seconds <= last_sample_t_)
    return;
  last_sample_t_ = snapshot.sim_time_seconds;
  for (const MetricRow& row : snapshot.rows) {
    const double value =
        row.kind == MetricKind::kHistogram ? row.p99 : row.value;
    Append(row.name, row.kind, snapshot.sim_time_seconds, value);
  }
}

void
TimeSeriesStore::Append(const std::string& name, MetricKind kind, double t,
                        double value)
{
  Series* series = FindSeries(name);
  if (series == nullptr) {
    if (series_.size() >= config_.max_series) {
      ++dropped_series_;
      return;
    }
    // The only allocating path: first sight of a metric name. Rings
    // are sized once here and never grow.
    index_.emplace(name, series_.size());
    series_.emplace_back();
    series = &series_.back();
    series->name = name;
    series->kind = kind;
    series->raw.resize(config_.raw_capacity);
    series->tiers.resize(config_.tiers.size());
    for (std::size_t i = 0; i < config_.tiers.size(); ++i) {
      series->tiers[i].resolution_s = config_.tiers[i].resolution_s;
      series->tiers[i].ring.resize(config_.tiers[i].capacity);
    }
  }
  AppendToSeries(*series, t, value);
}

void
TimeSeriesStore::FinalizeBucket(Tier& tier)
{
  AggPoint& slot = tier.ring[tier.head];
  slot.t = tier.bucket_start;
  slot.min = tier.min;
  slot.max = tier.max;
  slot.mean = tier.sum / static_cast<double>(tier.count);
  slot.last = tier.last;
  slot.count = tier.count;
  tier.head = (tier.head + 1) % tier.ring.size();
  if (tier.size < tier.ring.size())
    ++tier.size;
  tier.open = false;
  tier.count = 0;
}

void
TimeSeriesStore::AppendToSeries(Series& series, double t, double value)
{
  if (series.any && t < series.last_t) {
    ++out_of_order_;
    return;
  }
  if (!series.any || value != series.last_value)
    series.last_change_t = t;
  series.any = true;
  series.last_t = t;
  series.last_value = value;
  ++total_samples_;

  series.raw[series.head] = RawPoint{t, value};
  series.head = (series.head + 1) % series.raw.size();
  if (series.size < series.raw.size())
    ++series.size;

  for (Tier& tier : series.tiers) {
    const double start =
        std::floor(t / tier.resolution_s) * tier.resolution_s;
    if (tier.open && start > tier.bucket_start)
      FinalizeBucket(tier);
    if (!tier.open) {
      tier.open = true;
      tier.bucket_start = start;
      tier.min = value;
      tier.max = value;
      tier.sum = 0.0;
      tier.count = 0;
    }
    tier.min = std::min(tier.min, value);
    tier.max = std::max(tier.max, value);
    tier.sum += value;
    tier.last = value;
    ++tier.count;
  }
}

std::vector<RawPoint>
TimeSeriesStore::QueryRaw(const std::string& name, double window_s) const
{
  std::vector<RawPoint> out;
  const Series* series = FindSeries(name);
  if (series == nullptr || series->size == 0)
    return out;
  const double cutoff =
      window_s > 0.0 ? series->last_t - window_s : -1.0;
  out.reserve(series->size);
  const std::size_t oldest =
      (series->head + series->raw.size() - series->size) %
      series->raw.size();
  for (std::size_t i = 0; i < series->size; ++i) {
    const RawPoint& point = series->raw[(oldest + i) % series->raw.size()];
    if (window_s <= 0.0 || point.t >= cutoff)
      out.push_back(point);
  }
  return out;
}

AggQueryResult
TimeSeriesStore::QueryAgg(const std::string& name, double resolution_s,
                          double window_s) const
{
  AggQueryResult out;
  const Series* series = FindSeries(name);
  if (series == nullptr || series->tiers.empty())
    return out;
  // Finest tier that is at least as coarse as requested; the coarsest
  // tier when the request is coarser than everything we keep.
  const Tier* chosen = &series->tiers.back();
  for (const Tier& tier : series->tiers) {
    if (tier.resolution_s >= resolution_s) {
      chosen = &tier;
      break;
    }
  }
  out.resolution_s = chosen->resolution_s;
  const double cutoff =
      window_s > 0.0 ? series->last_t - window_s : -1.0;
  out.points.reserve(chosen->size + 1);
  const std::size_t cap = chosen->ring.size();
  const std::size_t oldest = (chosen->head + cap - chosen->size) % cap;
  for (std::size_t i = 0; i < chosen->size; ++i) {
    const AggPoint& point = chosen->ring[(oldest + i) % cap];
    if (window_s <= 0.0 || point.t >= cutoff)
      out.points.push_back(point);
  }
  if (chosen->open && (window_s <= 0.0 || chosen->bucket_start >= cutoff)) {
    AggPoint open;
    open.t = chosen->bucket_start;
    open.min = chosen->min;
    open.max = chosen->max;
    open.mean = chosen->sum / static_cast<double>(chosen->count);
    open.last = chosen->last;
    open.count = chosen->count;
    out.points.push_back(open);
  }
  return out;
}

bool
TimeSeriesStore::LatestValue(const std::string& name, double* value) const
{
  const Series* series = FindSeries(name);
  if (series == nullptr || !series->any)
    return false;
  *value = series->last_value;
  return true;
}

double
TimeSeriesStore::LastChangeTime(const std::string& name) const
{
  const Series* series = FindSeries(name);
  if (series == nullptr || !series->any)
    return -1.0;
  return series->last_change_t;
}

bool
TimeSeriesStore::DeltaOver(const std::string& name, double window_s,
                           double* delta) const
{
  const Series* series = FindSeries(name);
  if (series == nullptr || series->size == 0)
    return false;
  const double cutoff = series->last_t - window_s;
  const std::size_t cap = series->raw.size();
  const std::size_t oldest = (series->head + cap - series->size) % cap;
  // Newest retained point at or before the cutoff; the oldest retained
  // point when eviction already ate the true baseline (best effort).
  double baseline = series->raw[oldest].value;
  for (std::size_t i = 0; i < series->size; ++i) {
    const RawPoint& point = series->raw[(oldest + i) % cap];
    if (point.t > cutoff)
      break;
    baseline = point.value;
  }
  *delta = series->last_value - baseline;
  return true;
}

std::uint64_t
TimeSeriesStore::Fingerprint() const
{
  Fnv1a hash;
  hash.AddU64(static_cast<std::uint64_t>(index_.size()));
  for (const auto& [name, slot] : index_) {
    const Series& series = series_[slot];
    hash.AddString(name);
    hash.AddU64(static_cast<std::uint64_t>(series.kind));
    hash.AddU64(static_cast<std::uint64_t>(series.size));
    const std::size_t cap = series.raw.size();
    const std::size_t oldest = (series.head + cap - series.size) % cap;
    for (std::size_t i = 0; i < series.size; ++i) {
      const RawPoint& point = series.raw[(oldest + i) % cap];
      hash.AddDouble(point.t);
      hash.AddDouble(point.value);
    }
    for (const Tier& tier : series.tiers) {
      hash.AddDouble(tier.resolution_s);
      hash.AddU64(static_cast<std::uint64_t>(tier.size));
      const std::size_t tcap = tier.ring.size();
      const std::size_t toldest = (tier.head + tcap - tier.size) % tcap;
      for (std::size_t i = 0; i < tier.size; ++i) {
        const AggPoint& point = tier.ring[(toldest + i) % tcap];
        hash.AddDouble(point.t);
        hash.AddDouble(point.min);
        hash.AddDouble(point.max);
        hash.AddDouble(point.mean);
        hash.AddDouble(point.last);
        hash.AddU64(point.count);
      }
      hash.AddU64(tier.open ? 1 : 0);
      if (tier.open) {
        hash.AddDouble(tier.bucket_start);
        hash.AddDouble(tier.min);
        hash.AddDouble(tier.max);
        hash.AddDouble(tier.sum);
        hash.AddDouble(tier.last);
        hash.AddU64(tier.count);
      }
    }
  }
  return hash.value();
}

TimeSeriesSnapshot
TimeSeriesStore::Snapshot() const
{
  TimeSeriesSnapshot out;
  out.last_sample_t = last_sample_t_;
  out.total_samples = total_samples_;
  out.series.reserve(index_.size());
  for (const auto& [name, slot] : index_) {
    const Series& series = series_[slot];
    SeriesSnapshot copy;
    copy.name = name;
    copy.kind = series.kind;
    copy.raw = QueryRaw(name, 0.0);
    copy.tiers.reserve(series.tiers.size());
    for (const Tier& tier : series.tiers) {
      SeriesSnapshot::TierData data;
      data.resolution_s = tier.resolution_s;
      data.points = QueryAgg(name, tier.resolution_s, 0.0).points;
      copy.tiers.push_back(std::move(data));
    }
    out.series.push_back(std::move(copy));
  }
  return out;
}

std::string
TimeSeriesStore::ToJsonl() const
{
  std::string out;
  const TimeSeriesSnapshot snapshot = Snapshot();
  for (const SeriesSnapshot& series : snapshot.series) {
    out += "{\"series\":\"" + series.name + "\",\"kind\":\"";
    out += MetricKindName(series.kind);
    out += "\",\"raw\":[";
    for (std::size_t i = 0; i < series.raw.size(); ++i) {
      if (i)
        out += ',';
      out += '[' + Num(series.raw[i].t) + ',' + Num(series.raw[i].value) +
             ']';
    }
    out += "],\"tiers\":[";
    for (std::size_t ti = 0; ti < series.tiers.size(); ++ti) {
      const SeriesSnapshot::TierData& tier = series.tiers[ti];
      if (ti)
        out += ',';
      out += "{\"res\":" + Num(tier.resolution_s) + ",\"points\":[";
      for (std::size_t i = 0; i < tier.points.size(); ++i) {
        const AggPoint& p = tier.points[i];
        if (i)
          out += ',';
        out += '[' + Num(p.t) + ',' + Num(p.min) + ',' + Num(p.max) + ',' +
               Num(p.mean) + ',' + Num(p.last) + ',' +
               std::to_string(p.count) + ']';
      }
      out += "]}";
    }
    out += "]}\n";
  }
  return out;
}

}  // namespace flex::obs
