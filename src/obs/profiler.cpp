#include "profiler.hpp"

#include <ctime>

#include "obs/log.hpp"

namespace flex::obs {

namespace {

using SteadyClock = std::chrono::steady_clock;

std::int64_t
NowNanos()
{
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             SteadyClock::now().time_since_epoch())
      .count();
}

}  // namespace

double
ThreadCpuMicros()
{
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e6 +
           static_cast<double>(ts.tv_nsec) * 1e-3;
  }
#endif
  return 0.0;
}

Profiler&
Profiler::Global()
{
  static Profiler profiler;
  return profiler;
}

Profiler::ThreadSlot&
Profiler::SlotForThisThread()
{
  const std::thread::id self = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(slots_mu_);
  std::unique_ptr<ThreadSlot>& slot = slots_[self];
  if (!slot)
    slot = std::make_unique<ThreadSlot>();
  return *slot;
}

void
Profiler::Record(const char* phase, double wall_us, double cpu_us)
{
  ThreadSlot& slot = SlotForThisThread();
  std::lock_guard<std::mutex> lock(slot.mu);
  PhaseAgg& agg = slot.phases[phase];
  agg.wall.Observe(wall_us);
  agg.cpu.Observe(cpu_us);
  records_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<Profiler::PhaseRow>
Profiler::Snapshot() const
{
  std::map<std::string, PhaseRow> merged;
  std::lock_guard<std::mutex> slots_lock(slots_mu_);
  for (const auto& [tid, slot] : slots_) {
    (void)tid;
    std::lock_guard<std::mutex> lock(slot->mu);
    for (const auto& [phase, agg] : slot->phases) {
      PhaseRow& row = merged[phase];
      if (row.phase.empty())
        row.phase = phase;
      ++row.threads;
      row.wall.Merge(agg.wall);
      row.cpu.Merge(agg.cpu);
    }
  }
  std::vector<PhaseRow> rows;
  rows.reserve(merged.size());
  for (auto& [phase, row] : merged) {
    (void)phase;
    rows.push_back(std::move(row));
  }
  return rows;
}

void
Profiler::Reset()
{
  std::lock_guard<std::mutex> slots_lock(slots_mu_);
  for (auto& [tid, slot] : slots_) {
    (void)tid;
    std::lock_guard<std::mutex> lock(slot->mu);
    slot->phases.clear();
  }
  records_.store(0, std::memory_order_relaxed);
}

ScopedPhaseTimer::ScopedPhaseTimer(const char* phase, Profiler* profiler)
    : phase_(phase),
      profiler_(profiler != nullptr ? profiler : &Profiler::Global()),
      wall_start_(SteadyClock::now()),
      cpu_start_us_(ThreadCpuMicros())
{
}

ScopedPhaseTimer::~ScopedPhaseTimer()
{
  const double wall_us =
      std::chrono::duration<double, std::micro>(SteadyClock::now() -
                                                wall_start_)
          .count();
  const double cpu_end_us = ThreadCpuMicros();
  const double cpu_us =
      cpu_end_us > cpu_start_us_ ? cpu_end_us - cpu_start_us_ : 0.0;
  profiler_->Record(phase_, wall_us, cpu_us);
}

StallWatchdog::StallWatchdog(WatchdogConfig config)
    : config_(std::move(config))
{
}

StallWatchdog::~StallWatchdog() { Stop(); }

int
StallWatchdog::RegisterThread(const std::string& name)
{
  std::lock_guard<std::mutex> lock(mu_);
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->last_beat_ns.store(NowNanos(), std::memory_order_relaxed);
  entries_.push_back(std::move(entry));
  return static_cast<int>(entries_.size()) - 1;
}

void
StallWatchdog::Beat(int id)
{
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int>(entries_.size()))
    return;
  Entry& entry = *entries_[static_cast<std::size_t>(id)];
  entry.last_beat_ns.store(NowNanos(), std::memory_order_relaxed);
  entry.beats.fetch_add(1, std::memory_order_relaxed);
  entry.done.store(false, std::memory_order_relaxed);
}

void
StallWatchdog::MarkDone(int id)
{
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int>(entries_.size()))
    return;
  Entry& entry = *entries_[static_cast<std::size_t>(id)];
  entry.done.store(true, std::memory_order_relaxed);
  if (entry.stalled.load(std::memory_order_relaxed)) {
    entry.stalled.store(false, std::memory_order_relaxed);
    stalled_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void
StallWatchdog::Start()
{
  if (!stop_.load(std::memory_order_acquire))
    return;  // already running
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { CheckerLoop(); });
}

void
StallWatchdog::Stop()
{
  if (stop_.load(std::memory_order_acquire))
    return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable())
    thread_.join();
}

void
StallWatchdog::CheckerLoop()
{
  const auto period = std::chrono::duration<double>(
      std::max(0.01, config_.poll_period_seconds));
  while (!stop_.load(std::memory_order_acquire)) {
    CheckNow();
    std::this_thread::sleep_for(period);
  }
}

void
StallWatchdog::CheckNow()
{
  const std::int64_t now_ns = NowNanos();
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Entry>& entry : entries_) {
    if (entry->done.load(std::memory_order_relaxed))
      continue;
    const double silent_s =
        static_cast<double>(now_ns - entry->last_beat_ns.load(
                                         std::memory_order_relaxed)) *
        1e-9;
    const bool was_stalled = entry->stalled.load(std::memory_order_relaxed);
    if (silent_s > config_.threshold_seconds) {
      if (!was_stalled) {
        entry->stalled.store(true, std::memory_order_relaxed);
        stalled_count_.fetch_add(1, std::memory_order_relaxed);
        stall_events_.fetch_add(1, std::memory_order_relaxed);
        FLEX_LOG(LogLevel::kError, "watchdog",
                 "thread '%s' silent for %.2f s (threshold %.2f s)%s%s",
                 entry->name.c_str(), silent_s, config_.threshold_seconds,
                 config_.forensic_hint.empty() ? "" : "; forensics: ",
                 config_.forensic_hint.c_str());
      }
    } else if (was_stalled) {
      entry->stalled.store(false, std::memory_order_relaxed);
      stalled_count_.fetch_sub(1, std::memory_order_relaxed);
      FLEX_LOG(LogLevel::kWarn, "watchdog",
               "thread '%s' resumed after a stall", entry->name.c_str());
    }
  }
}

std::vector<StallWatchdog::ThreadState>
StallWatchdog::SnapshotThreads() const
{
  const std::int64_t now_ns = NowNanos();
  std::vector<ThreadState> states;
  std::lock_guard<std::mutex> lock(mu_);
  states.reserve(entries_.size());
  for (const std::unique_ptr<Entry>& entry : entries_) {
    ThreadState state;
    state.name = entry->name;
    state.silent_seconds =
        static_cast<double>(now_ns - entry->last_beat_ns.load(
                                         std::memory_order_relaxed)) *
        1e-9;
    state.stalled = entry->stalled.load(std::memory_order_relaxed);
    state.done = entry->done.load(std::memory_order_relaxed);
    state.beats = entry->beats.load(std::memory_order_relaxed);
    states.push_back(std::move(state));
  }
  return states;
}

void
StallWatchdog::SetForensicHint(std::string hint)
{
  std::lock_guard<std::mutex> lock(mu_);
  config_.forensic_hint = std::move(hint);
}

std::string
StallWatchdog::forensic_hint() const
{
  std::lock_guard<std::mutex> lock(mu_);
  return config_.forensic_hint;
}

}  // namespace flex::obs
