/**
 * @file
 * In-process profiler: scoped phase timers and a stall watchdog.
 *
 * Two live-observability primitives that deliberately measure WALL and
 * CPU time, never simulated time, and therefore must never feed back
 * into simulation state:
 *
 *  - ScopedPhaseTimer / Profiler: RAII timers around coarse phases
 *    ("emulation.step", "offline.solve_batch", "controller.decide")
 *    aggregated into per-thread wall/CPU histograms. Snapshot() merges
 *    the per-thread aggregates per phase so `/metrics` can export one
 *    labelled histogram family per dimension. Recording takes two short
 *    mutexes (slot lookup + slot update); phases are milliseconds to
 *    seconds, so the overhead is noise.
 *
 *  - StallWatchdog: heartbeat registry plus a checker thread. Worker
 *    loops (the emulation sampler, solver drivers) register once and
 *    Beat() periodically; a thread silent for longer than the threshold
 *    is flagged, logged with a forensic-bundle pointer, and surfaced
 *    through `/healthz` until it beats again. All watchdog state is
 *    atomics or mutex-guarded copies, so observers never block the
 *    observed threads for more than a heartbeat store.
 */
#ifndef FLEX_OBS_PROFILER_HPP_
#define FLEX_OBS_PROFILER_HPP_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace flex::obs {

/** Current thread's consumed CPU time in microseconds (0 if unknown). */
double ThreadCpuMicros();

/**
 * Phase-timing aggregator. Thread-safe: each recording thread gets its
 * own slot; snapshots merge slots under the slot mutexes.
 */
class Profiler {
 public:
  Profiler() = default;

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /** Process-wide instance used by FLEX_PROFILE_PHASE. */
  static Profiler& Global();

  /** Records one completed phase execution on the calling thread. */
  void Record(const char* phase, double wall_us, double cpu_us);

  /** One phase, merged over every thread that recorded it. */
  struct PhaseRow {
    std::string phase;
    int threads = 0;  ///< distinct threads that recorded this phase
    Histogram wall{HistogramConfig::WallMicros()};
    Histogram cpu{HistogramConfig::WallMicros()};
  };

  /** All phases, sorted by name. */
  std::vector<PhaseRow> Snapshot() const;

  /** Drops all recorded data (slots stay registered). */
  void Reset();

  /** Phases recorded across all threads since construction / Reset. */
  std::uint64_t record_count() const {
    return records_.load(std::memory_order_relaxed);
  }

 private:
  struct PhaseAgg {
    Histogram wall{HistogramConfig::WallMicros()};
    Histogram cpu{HistogramConfig::WallMicros()};
  };
  struct ThreadSlot {
    mutable std::mutex mu;
    std::map<std::string, PhaseAgg> phases;
  };

  ThreadSlot& SlotForThisThread();

  mutable std::mutex slots_mu_;
  std::map<std::thread::id, std::unique_ptr<ThreadSlot>> slots_;
  std::atomic<std::uint64_t> records_{0};
};

/**
 * RAII phase timer; records wall + CPU duration on destruction into
 * @p profiler (default: Profiler::Global()).
 */
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(const char* phase, Profiler* profiler = nullptr);
  ~ScopedPhaseTimer();

  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  const char* phase_;
  Profiler* profiler_;
  std::chrono::steady_clock::time_point wall_start_;
  double cpu_start_us_;
};

/** Watchdog tuning. */
struct WatchdogConfig {
  /** A registered thread silent for longer than this is stalled. */
  double threshold_seconds = 5.0;
  /** Checker-thread poll period. */
  double poll_period_seconds = 0.25;
  /**
   * Forensic pointer included in stall logs and `/healthz` — typically
   * the freshest forensic-bundle directory or flight-recorder dump the
   * harness knows about, so the on-call path from "stalled" to
   * "evidence" is one copy-paste.
   */
  std::string forensic_hint;
};

/**
 * Heartbeat stall watchdog. Register each long-running loop once, Beat()
 * from inside it, Start() the checker. A stall is flagged (once per
 * episode) and clears automatically when beats resume.
 */
class StallWatchdog {
 public:
  explicit StallWatchdog(WatchdogConfig config = {});
  ~StallWatchdog();

  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  /** Registers a monitored loop; the id is stable for Beat(). */
  int RegisterThread(const std::string& name);

  /** Heartbeat from the monitored loop; cheap (mutex + atomic store). */
  void Beat(int id);

  /**
   * Retires a monitored loop that finished cleanly: it is excluded from
   * stall checks (and un-flagged if currently stalled), but its name,
   * beat count, and done state stay visible in SnapshotThreads(). A
   * loop that ends without MarkDone() would otherwise read as a stall.
   */
  void MarkDone(int id);

  /** Launches the checker thread; idempotent. */
  void Start();

  /** Stops the checker thread; idempotent. Entries stay registered. */
  void Stop();

  /** One checker pass, synchronously (tests, Start()-less embedders). */
  void CheckNow();

  /** Published state of one monitored loop. */
  struct ThreadState {
    std::string name;
    double silent_seconds = 0.0;
    bool stalled = false;
    bool done = false;
    std::uint64_t beats = 0;
  };

  /** All monitored loops, registration order. */
  std::vector<ThreadState> SnapshotThreads() const;

  bool any_stalled() const {
    return stalled_count_.load(std::memory_order_relaxed) > 0;
  }

  /** Stall episodes flagged since construction. */
  std::uint64_t stall_events() const {
    return stall_events_.load(std::memory_order_relaxed);
  }

  const WatchdogConfig& config() const { return config_; }

  void SetForensicHint(std::string hint);
  std::string forensic_hint() const;

 private:
  struct Entry {
    std::string name;
    std::atomic<std::int64_t> last_beat_ns{0};
    std::atomic<std::uint64_t> beats{0};
    std::atomic<bool> stalled{false};
    std::atomic<bool> done{false};
  };

  void CheckerLoop();

  WatchdogConfig config_;
  mutable std::mutex mu_;  // guards entries_ growth + forensic hint
  std::vector<std::unique_ptr<Entry>> entries_;
  std::thread thread_;
  std::atomic<bool> stop_{true};
  std::atomic<std::uint64_t> stall_events_{0};
  std::atomic<int> stalled_count_{0};
};

}  // namespace flex::obs

/** RAII phase timer into Profiler::Global(); one per scope. */
#define FLEX_PROFILE_PHASE_CONCAT2(a, b) a##b
#define FLEX_PROFILE_PHASE_CONCAT(a, b) FLEX_PROFILE_PHASE_CONCAT2(a, b)
#define FLEX_PROFILE_PHASE(phase)                                          \
  ::flex::obs::ScopedPhaseTimer FLEX_PROFILE_PHASE_CONCAT(                 \
      flex_phase_timer_, __LINE__)(phase)

#endif  // FLEX_OBS_PROFILER_HPP_
