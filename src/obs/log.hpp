/**
 * @file
 * Structured leveled logging (FLEX_LOG).
 *
 * Replaces ad-hoc stdio diagnostics with one levelled, filterable
 * stream. The default threshold comes from the FLEX_LOG_LEVEL
 * environment variable ("trace" | "debug" | "info" | "warn" | "error" |
 * "off", default "warn") so tests stay quiet unless a developer opts
 * in. When a simulation clock is registered, every line is stamped with
 * the simulated time, which keeps logs aligned with traces and metrics
 * from the same run.
 *
 * The logger is process-global on purpose: the simulation is
 * single-threaded and log calls appear in deterministic event order, so
 * one sink is both sufficient and replayable.
 */
#ifndef FLEX_OBS_LOG_HPP_
#define FLEX_OBS_LOG_HPP_

#include <functional>
#include <string>

namespace flex::sim {
class EventQueue;
}  // namespace flex::sim

namespace flex::obs {

/** Severity levels, least to most severe. */
enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/** Short uppercase tag ("TRACE", "DEBUG", ...). */
const char* LogLevelName(LogLevel level);

/**
 * Parses a level name (case-insensitive); unknown strings fall back to
 * @p fallback so a typo in FLEX_LOG_LEVEL degrades gracefully.
 */
LogLevel ParseLogLevel(const char* name, LogLevel fallback = LogLevel::kWarn);

/** Current threshold; lazily initialized from FLEX_LOG_LEVEL. */
LogLevel GetLogLevel();

/** Overrides the threshold (tests, examples with --verbose flags). */
void SetLogLevel(LogLevel level);

/**
 * Registers the simulation clock used to stamp log lines with
 * simulated time. Pass nullptr to detach (lines then omit the t= tag).
 * The queue must outlive the registration.
 */
void SetLogClock(const sim::EventQueue* clock);

/**
 * Redirects formatted records away from stderr, e.g. into a test
 * vector. Pass an empty function to restore the stderr sink.
 */
using LogSink =
    std::function<void(LogLevel level, const std::string& line)>;
void SetLogSink(LogSink sink);

/** True when a record at @p level would be emitted. */
inline bool
LogEnabled(LogLevel level)
{
  return level >= GetLogLevel() && GetLogLevel() != LogLevel::kOff;
}

/**
 * Formats and emits one record. Prefer the FLEX_LOG macro, which skips
 * argument evaluation when the level is filtered out.
 */
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 3, 4)))
#endif
void
LogMessage(LogLevel level, const char* component, const char* format, ...);

}  // namespace flex::obs

/**
 * Emits one structured record:
 *   FLEX_LOG(flex::obs::LogLevel::kInfo, "fault", "armed %d events", n);
 * renders as "[INFO ] t=12.400 fault: armed 3 events".
 */
#define FLEX_LOG(level, component, ...)                                   \
  do {                                                                    \
    if (::flex::obs::LogEnabled(level))                                   \
      ::flex::obs::LogMessage((level), (component), __VA_ARGS__);         \
  } while (0)

#endif  // FLEX_OBS_LOG_HPP_
