/**
 * @file
 * Structured leveled logging (FLEX_LOG).
 *
 * Replaces ad-hoc stdio diagnostics with one levelled, filterable
 * stream. The default threshold comes from the FLEX_LOG_LEVEL
 * environment variable ("trace" | "debug" | "info" | "warn" | "error" |
 * "off", default "warn") so tests stay quiet unless a developer opts
 * in. When a simulation clock is registered, every line is stamped with
 * the simulated time, which keeps logs aligned with traces and metrics
 * from the same run.
 *
 * The logger is process-global on purpose: the simulation is
 * single-threaded and log calls appear in deterministic event order, so
 * one sink is both sufficient and replayable.
 */
#ifndef FLEX_OBS_LOG_HPP_
#define FLEX_OBS_LOG_HPP_

#include <cstdint>
#include <functional>
#include <string>

namespace flex::sim {
class EventQueue;
}  // namespace flex::sim

namespace flex::obs {

/** Severity levels, least to most severe. */
enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/** Short uppercase tag ("TRACE", "DEBUG", ...). */
const char* LogLevelName(LogLevel level);

/**
 * Parses a level name (case-insensitive); unknown strings fall back to
 * @p fallback so a typo in FLEX_LOG_LEVEL degrades gracefully.
 */
LogLevel ParseLogLevel(const char* name, LogLevel fallback = LogLevel::kWarn);

/** Current threshold; lazily initialized from FLEX_LOG_LEVEL. */
LogLevel GetLogLevel();

/** Overrides the threshold (tests, examples with --verbose flags). */
void SetLogLevel(LogLevel level);

/**
 * Registers the simulation clock used to stamp log lines with
 * simulated time. Pass nullptr to detach (lines then omit the t= tag).
 * The queue must outlive the registration.
 */
void SetLogClock(const sim::EventQueue* clock);

/** The registered simulation clock, or nullptr. */
const sim::EventQueue* GetLogClock();

/**
 * Redirects formatted records away from stderr, e.g. into a test
 * vector. Pass an empty function to restore the stderr sink.
 */
using LogSink =
    std::function<void(LogLevel level, const std::string& line)>;
void SetLogSink(LogSink sink);

/**
 * Tees every emitted record to @p path (append mode, same format as the
 * stderr sink), in addition to the sink/stderr output. Pass an empty
 * path to close the file sink. The file sink is lazily initialized from
 * the FLEX_LOG_FILE environment variable on the first log call; this
 * call overrides it. Returns false when the file cannot be opened.
 */
bool SetLogFile(const std::string& path);

/**
 * Calls swallowed by every FLEX_LOG_RATE_LIMITED site over the process
 * lifetime (an atomic; readable from any thread). The live exporter
 * folds this into the "log.suppressed_total" counter so dropped
 * diagnostics stay visible on /metrics — see obs::UpdateLogMetrics.
 */
std::uint64_t LogSuppressedTotal();

/** True when a record at @p level would be emitted. */
inline bool
LogEnabled(LogLevel level)
{
  return level >= GetLogLevel() && GetLogLevel() != LogLevel::kOff;
}

/**
 * Formats and emits one record. Prefer the FLEX_LOG macro, which skips
 * argument evaluation when the level is filtered out.
 */
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 3, 4)))
#endif
void
LogMessage(LogLevel level, const char* component, const char* format, ...);

/**
 * Per-callsite rate limiter for hot-loop diagnostics, so a storm (e.g.
 * a no-quorum warn per meter interval during an outage) cannot flood a
 * forensic dump. When the registered log clock is available, at most
 * one record per @p min_interval of simulated time passes; without a
 * clock it falls back to passing every @p every_nth call. Suppressed
 * calls are counted, and the next passing record is annotated with the
 * count by FLEX_LOG_RATE_LIMITED.
 *
 * Deterministic: gating depends only on simulated time / call counts,
 * never on wall time, so rate-limited logs replay identically.
 */
class LogRateLimiter {
 public:
  explicit LogRateLimiter(double min_interval_s = 5.0,
                          std::uint64_t every_nth = 100)
      : min_interval_s_(min_interval_s), every_nth_(every_nth)
  {
  }

  /** True when this call should emit; false when suppressed. */
  bool Admit();

  /** Calls suppressed since the last admitted one. */
  std::uint64_t suppressed() const { return suppressed_; }

  /** Total calls suppressed over the limiter's lifetime. */
  std::uint64_t total_suppressed() const { return total_suppressed_; }

 private:
  double min_interval_s_;
  std::uint64_t every_nth_;
  bool has_emitted_ = false;
  double last_emit_t_ = 0.0;
  std::uint64_t calls_since_emit_ = 0;
  std::uint64_t suppressed_ = 0;
  std::uint64_t total_suppressed_ = 0;
};

}  // namespace flex::obs

/**
 * Emits one structured record:
 *   FLEX_LOG(flex::obs::LogLevel::kInfo, "fault", "armed %d events", n);
 * renders as "[INFO ] t=12.400 fault: armed 3 events".
 */
#define FLEX_LOG(level, component, ...)                                   \
  do {                                                                    \
    if (::flex::obs::LogEnabled(level))                                   \
      ::flex::obs::LogMessage((level), (component), __VA_ARGS__);         \
  } while (0)

/**
 * FLEX_LOG with a per-callsite, per-thread rate limiter (one per
 * expansion site per thread). thread_local keeps the limiter race-free
 * when a shared callsite is reached from parallel sweep lanes (e.g. the
 * alert engine logging a firing edge in every lane) while behaving
 * exactly like a plain static in single-threaded runs. The format
 * string gains a " (suppressed N similar)" tail when earlier calls at
 * this site were swallowed:
 *   FLEX_LOG_RATE_LIMITED(kWarn, "telemetry", "no quorum on ups %d", u);
 */
#define FLEX_LOG_RATE_LIMITED(level, component, format, ...)              \
  do {                                                                    \
    if (::flex::obs::LogEnabled(level)) {                                 \
      thread_local ::flex::obs::LogRateLimiter flex_rate_limiter_;        \
      const std::uint64_t flex_suppressed_ = flex_rate_limiter_.suppressed(); \
      if (flex_rate_limiter_.Admit()) {                                   \
        if (flex_suppressed_ > 0)                                         \
          ::flex::obs::LogMessage((level), (component),                   \
                                  format " (suppressed %llu similar)",    \
                                  ##__VA_ARGS__,                          \
                                  static_cast<unsigned long long>(        \
                                      flex_suppressed_));                 \
        else                                                              \
          ::flex::obs::LogMessage((level), (component), format,           \
                                  ##__VA_ARGS__);                         \
      }                                                                   \
    }                                                                     \
  } while (0)

#endif  // FLEX_OBS_LOG_HPP_
