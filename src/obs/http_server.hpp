/**
 * @file
 * Dependency-free embedded HTTP server.
 *
 * A deliberately small blocking-socket server on one dedicated thread,
 * built for the live observability plane (`/metrics`, `/healthz`, ...)
 * and reusable by the future fleet-service control surface: exact-path
 * GET routing, ephemeral-port binding for tests, and a Stop() that
 * unblocks the accept loop promptly. Connections are served serially on
 * the server thread — scrape traffic is one request at a time, and
 * serial handling keeps handler code free of its own locking beyond
 * whatever snapshot source it reads.
 *
 * The server is strictly an observer: handlers must only read
 * atomics/locked snapshot copies (see http_export.hpp), never live
 * simulation state, so a scraper hammering the endpoints can never
 * perturb simulated time or break bit-identity.
 */
#ifndef FLEX_OBS_HTTP_SERVER_HPP_
#define FLEX_OBS_HTTP_SERVER_HPP_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace flex::obs {

/**
 * Connection-handling limits. All three exist to keep a misbehaving or
 * hostile client from pinning the single accept thread: an oversized
 * header block answers 431, a client that drips bytes slower than the
 * wall deadline answers 408, and a fully idle client trips the receive
 * timeout. Defaults are generous for scrape traffic; tests shrink them.
 */
struct HttpServerConfig {
  /** Request line + headers cap; beyond it the server answers 431. */
  std::size_t max_request_bytes = 16 * 1024;
  /** SO_RCVTIMEO: one recv() may block at most this long. */
  double recv_timeout_s = 2.0;
  /**
   * Wall deadline for receiving the whole header block; a slow-drip
   * client that keeps the socket alive past it answers 408.
   */
  double connection_deadline_s = 5.0;
};

/** One parsed request (request line only; headers are skipped). */
struct HttpRequest {
  std::string method;  ///< "GET", "HEAD", ...
  std::string path;    ///< decoded-as-is path, e.g. "/metrics"
  std::string query;   ///< raw query string after '?', may be empty
};

/** One response; the server adds Content-Length and Connection. */
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/**
 * The server. Register routes, Start(), scrape, Stop(). Routes are an
 * exact-path match; unknown paths answer 404, handler exceptions answer
 * 500 with the exception message.
 */
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(HttpServerConfig config = {}) : config_(config) {}
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /**
   * Registers @p handler for @p path (e.g. "/metrics"). Must be called
   * before Start(); the route table is read without a lock afterwards.
   */
  void Route(std::string path, Handler handler);

  /**
   * Binds 127.0.0.1:@p port (0 = kernel-assigned ephemeral port) and
   * launches the serve thread. @return false with the OS error logged
   * when the socket cannot be bound.
   */
  bool Start(int port = 0);

  /** Joins the serve thread and closes the socket; idempotent. */
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /** Bound TCP port; 0 before a successful Start(). */
  int port() const { return port_; }

  /** Requests answered (any status) since construction. */
  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  const HttpServerConfig& config() const { return config_; }

  /** Canonical reason phrase ("OK", "Not Found", ...). */
  static const char* StatusText(int status);

 private:
  void ServeLoop();
  void HandleConnection(int fd);

  HttpServerConfig config_;
  std::map<std::string, Handler> routes_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
  int listen_fd_ = -1;
  int port_ = 0;
};

}  // namespace flex::obs

#endif  // FLEX_OBS_HTTP_SERVER_HPP_
