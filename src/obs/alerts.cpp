#include "obs/alerts.hpp"

#include <algorithm>
#include <cstdio>

#include "common/hash.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"

namespace flex::obs {

namespace {

std::string
Num(double value)
{
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

std::string
EscapeJson(const std::string& text)
{
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char*
AlertSeverityName(AlertSeverity severity)
{
  switch (severity) {
    case AlertSeverity::kInfo:
      return "info";
    case AlertSeverity::kWarn:
      return "warn";
    case AlertSeverity::kPage:
      return "page";
  }
  return "unknown";
}

const char*
AlertRuleKindName(AlertRuleKind kind)
{
  switch (kind) {
    case AlertRuleKind::kThreshold:
      return "threshold";
    case AlertRuleKind::kStale:
      return "stale";
    case AlertRuleKind::kRateOfChange:
      return "rate_of_change";
    case AlertRuleKind::kBurnRate:
      return "burn_rate";
  }
  return "unknown";
}

const char*
AlertStateName(AlertState state)
{
  switch (state) {
    case AlertState::kInactive:
      return "inactive";
    case AlertState::kPending:
      return "pending";
    case AlertState::kFiring:
      return "firing";
  }
  return "unknown";
}

AlertEngine::AlertEngine(const TimeSeriesStore* store,
                         std::vector<AlertRule> rules)
    : store_(store)
{
  statuses_.reserve(rules.size());
  runtime_.resize(rules.size());
  for (AlertRule& rule : rules) {
    AlertStatus status;
    status.rule = std::move(rule);
    statuses_.push_back(std::move(status));
  }
}

bool
AlertEngine::Condition(const AlertRule& rule, double now_s, double* value,
                       std::string* why) const
{
  *value = 0.0;
  switch (rule.kind) {
    case AlertRuleKind::kThreshold: {
      double v = 0.0;
      if (!store_->LatestValue(rule.metric, &v))
        return false;
      double bound = rule.threshold;
      if (!rule.threshold_metric.empty() &&
          !store_->LatestValue(rule.threshold_metric, &bound))
        return false;
      *value = v;
      const bool hit = rule.compare == AlertCompare::kGreaterThan
                           ? v > bound
                           : v < bound;
      if (hit)
        *why = rule.metric + "=" + Num(v) + " vs bound " + Num(bound);
      return hit;
    }
    case AlertRuleKind::kStale: {
      const double changed_at = store_->LastChangeTime(rule.metric);
      if (changed_at < 0.0)
        return false;  // no data yet: fresh, not stale
      const double age = now_s - changed_at;
      *value = age;
      if (age > rule.window_s) {
        *why = rule.metric + " unchanged for " + Num(age) + "s";
        return true;
      }
      return false;
    }
    case AlertRuleKind::kRateOfChange: {
      if (rule.window_s <= 0.0)
        return false;
      double delta = 0.0;
      if (!store_->DeltaOver(rule.metric, rule.window_s, &delta))
        return false;
      const double rate = delta / rule.window_s;
      *value = rate;
      const bool hit = rule.compare == AlertCompare::kGreaterThan
                           ? rate > rule.threshold
                           : rate < rule.threshold;
      if (hit)
        *why = rule.metric + " rate=" + Num(rate) + "/s vs bound " +
               Num(rule.threshold);
      return hit;
    }
    case AlertRuleKind::kBurnRate: {
      const double denom = std::max(1e-9, 1.0 - rule.slo_target);
      double burn_short = 0.0;
      double burn_long = 0.0;
      const double windows[2] = {rule.short_window_s, rule.long_window_s};
      double* burns[2] = {&burn_short, &burn_long};
      for (int i = 0; i < 2; ++i) {
        double err = 0.0;
        double total = 0.0;
        if (!store_->DeltaOver(rule.metric, windows[i], &err) ||
            !store_->DeltaOver(rule.total_metric, windows[i], &total))
          return false;
        const double ratio = total > 0.0 ? err / total : 0.0;
        *burns[i] = ratio / denom;
      }
      *value = std::min(burn_short, burn_long);
      if (burn_short > rule.burn_factor && burn_long > rule.burn_factor) {
        *why = "burn short=" + Num(burn_short) + " long=" + Num(burn_long) +
               " vs factor " + Num(rule.burn_factor);
        return true;
      }
      return false;
    }
  }
  return false;
}

void
AlertEngine::Transition(std::size_t i, double now_s, AlertState to,
                        double value, const std::string& message)
{
  AlertStatus& status = statuses_[i];
  AlertTransition edge;
  edge.t = now_s;
  edge.rule = status.rule.name;
  edge.from = status.state;
  edge.to = to;
  edge.value = value;
  edge.message = message;

  status.state = to;
  status.since_s = now_s;
  if (to == AlertState::kFiring) {
    ++status.fire_count;
    ++total_fired_;
  }

  if (recorder_ != nullptr)
    recorder_->Record(Seconds(now_s), RecordKind::kAlert,
                      static_cast<int>(i), static_cast<int>(to), value,
                      status.rule.name + ": " + message);
  if (to == AlertState::kFiring) {
    const LogLevel level = status.rule.severity == AlertSeverity::kPage
                               ? LogLevel::kError
                               : LogLevel::kWarn;
    FLEX_LOG_RATE_LIMITED(level, "alerts", "FIRING [%s] %s: %s",
                          AlertSeverityName(status.rule.severity),
                          status.rule.name.c_str(), message.c_str());
  } else if (edge.from == AlertState::kFiring) {
    FLEX_LOG_RATE_LIMITED(LogLevel::kInfo, "alerts", "resolved %s at t=%.3f",
                          status.rule.name.c_str(), now_s);
  }

  timeline_.push_back(edge);
  if (notifier_)
    notifier_(timeline_.back(), status);
}

void
AlertEngine::Evaluate(double now_s)
{
  ++evaluations_;
  for (std::size_t i = 0; i < statuses_.size(); ++i) {
    AlertStatus& status = statuses_[i];
    double value = 0.0;
    std::string why;
    const bool hit = Condition(status.rule, now_s, &value, &why);
    status.last_value = value;
    switch (status.state) {
      case AlertState::kInactive:
        if (hit) {
          runtime_[i].pending_since = now_s;
          Transition(i, now_s, AlertState::kPending, value, why);
          if (now_s - runtime_[i].pending_since >= status.rule.for_s)
            Transition(i, now_s, AlertState::kFiring, value, why);
        }
        break;
      case AlertState::kPending:
        if (!hit)
          Transition(i, now_s, AlertState::kInactive, value,
                     "condition cleared");
        else if (now_s - runtime_[i].pending_since >= status.rule.for_s)
          Transition(i, now_s, AlertState::kFiring, value, why);
        break;
      case AlertState::kFiring:
        if (!hit)
          Transition(i, now_s, AlertState::kInactive, value, "resolved");
        break;
    }
  }
}

int
AlertEngine::firing_count() const
{
  int firing = 0;
  for (const AlertStatus& status : statuses_)
    if (status.state == AlertState::kFiring)
      ++firing;
  return firing;
}

int
AlertEngine::pending_count() const
{
  int pending = 0;
  for (const AlertStatus& status : statuses_)
    if (status.state == AlertState::kPending)
      ++pending;
  return pending;
}

AlertSeverity
AlertEngine::worst_firing_severity() const
{
  AlertSeverity worst = AlertSeverity::kInfo;
  for (const AlertStatus& status : statuses_)
    if (status.state == AlertState::kFiring &&
        status.rule.severity > worst)
      worst = status.rule.severity;
  return worst;
}

std::uint64_t
AlertEngine::Fingerprint() const
{
  Fnv1a hash;
  hash.AddU64(evaluations_);
  hash.AddU64(static_cast<std::uint64_t>(timeline_.size()));
  for (const AlertTransition& edge : timeline_) {
    hash.AddDouble(edge.t);
    hash.AddString(edge.rule);
    hash.AddU64(static_cast<std::uint64_t>(edge.from));
    hash.AddU64(static_cast<std::uint64_t>(edge.to));
    hash.AddDouble(edge.value);
    hash.AddString(edge.message);
  }
  for (const AlertStatus& status : statuses_) {
    hash.AddString(status.rule.name);
    hash.AddU64(static_cast<std::uint64_t>(status.state));
    hash.AddDouble(status.since_s);
    hash.AddU64(status.fire_count);
  }
  return hash.value();
}

AlertsSnapshot
AlertEngine::Snapshot(std::size_t timeline_tail) const
{
  AlertsSnapshot out;
  out.firing = firing_count();
  out.pending = pending_count();
  out.worst_firing = worst_firing_severity();
  out.statuses = statuses_;
  const std::size_t tail = std::min(timeline_tail, timeline_.size());
  out.timeline.assign(timeline_.end() - static_cast<std::ptrdiff_t>(tail),
                      timeline_.end());
  return out;
}

std::string
AlertEngine::TimelineJsonl() const
{
  std::string out;
  for (const AlertTransition& edge : timeline_) {
    out += "{\"t\":" + Num(edge.t);
    out += ",\"rule\":\"" + EscapeJson(edge.rule) + "\"";
    out += ",\"from\":\"";
    out += AlertStateName(edge.from);
    out += "\",\"to\":\"";
    out += AlertStateName(edge.to);
    out += "\",\"value\":" + Num(edge.value);
    out += ",\"message\":\"" + EscapeJson(edge.message) + "\"}\n";
  }
  return out;
}

AlertRule
InvariantViolationRule()
{
  AlertRule rule;
  rule.name = "InvariantViolation";
  rule.metric = "invariants.violations";
  rule.description = "the safety-invariant monitor flagged a violation";
  rule.severity = AlertSeverity::kPage;
  rule.kind = AlertRuleKind::kThreshold;
  rule.compare = AlertCompare::kGreaterThan;
  rule.threshold = 0.0;
  return rule;
}

AlertRule
WatchdogStallRule()
{
  AlertRule rule;
  rule.name = "WatchdogStall";
  rule.metric = "watchdog.stall_events";
  rule.description = "a monitored loop went silent past the watchdog threshold";
  rule.severity = AlertSeverity::kPage;
  rule.kind = AlertRuleKind::kThreshold;
  rule.compare = AlertCompare::kGreaterThan;
  rule.threshold = 0.0;
  return rule;
}

AlertRule
TelemetryStaleRule(double window_s, double for_s)
{
  AlertRule rule;
  rule.name = "TelemetryStalled";
  rule.metric = "pipeline.readings_delivered";
  rule.description = "no UPS readings delivered within the staleness window";
  rule.severity = AlertSeverity::kPage;
  rule.kind = AlertRuleKind::kStale;
  rule.window_s = window_s;
  rule.for_s = for_s;
  return rule;
}

AlertRule
ReactionBudgetRule(double for_s)
{
  AlertRule rule;
  rule.name = "ReactionBudgetExceeded";
  rule.metric = "reaction.end_to_end_s";
  rule.description = "reaction end-to-end p99 above the trip-curve budget";
  rule.severity = AlertSeverity::kPage;
  rule.kind = AlertRuleKind::kThreshold;
  rule.compare = AlertCompare::kGreaterThan;
  rule.threshold_metric = "reaction.budget_s";
  rule.for_s = for_s;
  return rule;
}

AlertRule
ReactionBurnRateRule()
{
  AlertRule rule;
  rule.name = "ReactionSloBurn";
  rule.metric = "reaction.over_budget";
  rule.description = "reaction-latency SLO burning in both windows";
  rule.severity = AlertSeverity::kPage;
  rule.kind = AlertRuleKind::kBurnRate;
  rule.total_metric = "reaction.episodes";
  rule.slo_target = 0.999;
  rule.burn_factor = 2.0;
  rule.short_window_s = 60.0;
  rule.long_window_s = 300.0;
  return rule;
}

AlertRule
UpsOverloadRule(double for_s)
{
  AlertRule rule;
  rule.name = "UpsOverloaded";
  rule.metric = "emulation.max_ups_load_fraction";
  rule.description = "a UPS is loaded past its failover rating";
  rule.severity = AlertSeverity::kWarn;
  rule.kind = AlertRuleKind::kThreshold;
  rule.compare = AlertCompare::kGreaterThan;
  rule.threshold = 1.0;
  rule.for_s = for_s;
  return rule;
}

std::vector<AlertRule>
BuiltinAlertRules()
{
  return {InvariantViolationRule(), WatchdogStallRule(),
          TelemetryStaleRule(),     ReactionBudgetRule(),
          ReactionBurnRateRule(),   UpsOverloadRule()};
}

}  // namespace flex::obs
