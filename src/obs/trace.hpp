/**
 * @file
 * Span-based reaction tracing for the failover path.
 *
 * The paper's core safety claim is temporal: after a UPS failover, the
 * telemetry -> detection -> Algorithm 1 -> actuation chain must finish
 * inside the UPS overload tolerance window (~10 s end to end, Section
 * IV-E / Fig. 12). The tracer stitches ONE trace per overload episode
 * across the five stages of that chain:
 *
 *   meter-sample  -> publish      (pub/sub delivery of the reading)
 *   publish       -> observe      (controller receives + detects)
 *   observe       -> decide       (Algorithm 1 selects actions)
 *   decide        -> actuate      (rack managers confirm enforcement)
 *
 * and reports per-stage and end-to-end latency against the trip-curve
 * budget. All timestamps are simulated time, so traces from two runs of
 * the same seed are bit-identical.
 *
 * Multi-primary controllers race on purpose; the first replica to
 * detect an episode opens the trace, later detections and waves are
 * counted as duplicates, and the first completed enforcement wave — the
 * instant the room actually became safe — closes the span chain.
 */
#ifndef FLEX_OBS_TRACE_HPP_
#define FLEX_OBS_TRACE_HPP_

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "obs/metrics.hpp"

namespace flex::obs {

class FlightRecorder;

/** The five stages of the reaction chain. */
enum class ReactionStage {
  kMeterSample = 0,  ///< meter read the overloaded UPS
  kPublish,          ///< pub/sub delivered the reading
  kObserve,          ///< a controller replica saw it and flagged overdraw
  kDecide,           ///< Algorithm 1 produced a corrective wave
  kActuate,          ///< rack managers confirmed the wave landed
};

inline constexpr int kNumReactionStages = 5;

/** Stable lowercase stage name ("meter_sample", ...). */
const char* ReactionStageName(ReactionStage stage);

/** One overload episode's reaction, with per-stage timestamps. */
struct ReactionTrace {
  std::uint64_t id = 0;
  /** Replica that opened the trace (first detection). */
  int detecting_replica = -1;
  /** UPS whose reading triggered the first detection. */
  int ups_index = -1;
  /** Corrective actions in the first enforced wave. */
  int actions = 0;
  /** Later detections / waves absorbed into this episode. */
  int duplicate_detections = 0;
  int duplicate_waves = 0;

  Seconds sampled_at{0.0};
  Seconds delivered_at{0.0};
  Seconds detected_at{0.0};
  Seconds decided_at{0.0};
  Seconds enforced_at{0.0};

  /** True once the first corrective wave fully landed. */
  bool complete = false;
  /** True once the episode was released (room healthy again). */
  bool closed = false;
  /** The tolerance window this reaction was measured against. */
  Seconds budget{0.0};

  /** Latency of one stage relative to the previous stage's timestamp. */
  Seconds StageLatency(ReactionStage stage) const;

  /** First meter sample -> enforcement confirmed. */
  Seconds EndToEnd() const { return enforced_at - sampled_at; }

  bool WithinBudget() const { return complete && EndToEnd() <= budget; }
};

/** Tracer tuning. */
struct TracerConfig {
  /**
   * End-to-end reaction budget. The default is the paper's ~10 s
   * end-of-life tolerance at the worst-case 4N/3 failover load (133%).
   */
  Seconds budget = Seconds(10.0);
};

/**
 * Assembles reaction traces from instrumentation hooks. Controllers
 * pass explicit `now` timestamps (their queue's Now()), which keeps the
 * tracer free of clock plumbing and usable across harnesses.
 *
 * When a metrics registry is attached, every completed trace also feeds
 * the reaction.* histograms, so exports carry p50/p99 per stage.
 */
class ReactionTracer {
 public:
  explicit ReactionTracer(TracerConfig config = {},
                          MetricsRegistry* metrics = nullptr);

  /** Attaches / replaces the registry fed by completed traces. */
  void SetMetrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  /** Attaches / replaces the flight recorder fed by stage events. */
  void SetRecorder(FlightRecorder* recorder) { recorder_ = recorder; }

  /**
   * A replica flagged overdraw from a UPS reading. Opens a new trace
   * when no episode is active; otherwise counts a duplicate detection.
   */
  void OnDetection(int replica, int ups_index, Seconds sampled_at,
                   Seconds delivered_at, Seconds now);

  /** Algorithm 1 produced a corrective wave of @p num_actions. */
  void OnDecision(int replica, int num_actions, Seconds now);

  /** A replica's enforcement wave fully completed. */
  void OnEnforced(int replica, Seconds now);

  /** A replica released its actions: the episode is over. */
  void OnEpisodeClosed(int replica, Seconds now);

  /** All traces, in episode order (the last one may still be open). */
  const std::vector<ReactionTrace>& traces() const { return traces_; }

  /** The open episode's trace, or nullptr. */
  const ReactionTrace* active() const;

  /** Traces whose first corrective wave landed. */
  std::size_t complete_count() const { return complete_count_; }

  /** Complete traces that beat the budget. */
  std::size_t within_budget_count() const { return within_budget_count_; }

  const TracerConfig& config() const { return config_; }

 private:
  void RecordCompletion(const ReactionTrace& trace);

  TracerConfig config_;
  MetricsRegistry* metrics_;
  FlightRecorder* recorder_ = nullptr;
  std::vector<ReactionTrace> traces_;
  bool episode_active_ = false;
  std::uint64_t next_id_ = 1;
  std::size_t complete_count_ = 0;
  std::size_t within_budget_count_ = 0;
};

}  // namespace flex::obs

#endif  // FLEX_OBS_TRACE_HPP_
