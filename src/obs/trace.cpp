#include "trace.hpp"

#include "common/error.hpp"
#include "obs/flight_recorder.hpp"

namespace flex::obs {

const char*
ReactionStageName(ReactionStage stage)
{
  switch (stage) {
    case ReactionStage::kMeterSample:
      return "meter_sample";
    case ReactionStage::kPublish:
      return "publish";
    case ReactionStage::kObserve:
      return "observe";
    case ReactionStage::kDecide:
      return "decide";
    case ReactionStage::kActuate:
      return "actuate";
  }
  return "unknown";
}

Seconds
ReactionTrace::StageLatency(ReactionStage stage) const
{
  switch (stage) {
    case ReactionStage::kMeterSample:
      return Seconds(0.0);  // the chain's origin
    case ReactionStage::kPublish:
      return delivered_at - sampled_at;
    case ReactionStage::kObserve:
      return detected_at - delivered_at;
    case ReactionStage::kDecide:
      return decided_at - detected_at;
    case ReactionStage::kActuate:
      return enforced_at - decided_at;
  }
  return Seconds(0.0);
}

ReactionTracer::ReactionTracer(TracerConfig config, MetricsRegistry* metrics)
    : config_(config), metrics_(metrics)
{
  FLEX_REQUIRE(config_.budget.value() > 0.0,
               "reaction budget must be positive");
}

const ReactionTrace*
ReactionTracer::active() const
{
  return episode_active_ ? &traces_.back() : nullptr;
}

void
ReactionTracer::OnDetection(int replica, int ups_index, Seconds sampled_at,
                            Seconds delivered_at, Seconds now)
{
  if (episode_active_) {
    ++traces_.back().duplicate_detections;
    return;
  }
  ReactionTrace trace;
  trace.id = next_id_++;
  trace.detecting_replica = replica;
  trace.ups_index = ups_index;
  trace.sampled_at = sampled_at;
  trace.delivered_at = delivered_at;
  trace.detected_at = now;
  trace.budget = config_.budget;
  traces_.push_back(trace);
  episode_active_ = true;
  if (metrics_ != nullptr)
    metrics_->counter("reaction.episodes").Increment();
  if (recorder_ != nullptr)
    recorder_->Record(now, RecordKind::kDetection, replica, ups_index);
}

void
ReactionTracer::OnDecision(int replica, int num_actions, Seconds now)
{
  if (!episode_active_)
    return;  // e.g. a late wave after the episode released
  ReactionTrace& trace = traces_.back();
  if (trace.complete || trace.actions > 0) {
    ++trace.duplicate_waves;
    return;
  }
  trace.decided_at = now;
  trace.actions = num_actions;
  if (recorder_ != nullptr)
    recorder_->Record(now, RecordKind::kDecision, replica, -1,
                      static_cast<double>(num_actions));
}

void
ReactionTracer::OnEnforced(int replica, Seconds now)
{
  if (!episode_active_)
    return;
  ReactionTrace& trace = traces_.back();
  if (trace.complete) {
    ++trace.duplicate_waves;
    return;
  }
  trace.enforced_at = now;
  trace.complete = true;
  ++complete_count_;
  if (trace.WithinBudget())
    ++within_budget_count_;
  RecordCompletion(trace);
  if (recorder_ != nullptr)
    recorder_->Record(now, RecordKind::kEnforced, replica, -1,
                      trace.EndToEnd().value());
}

void
ReactionTracer::OnEpisodeClosed(int replica, Seconds now)
{
  if (!episode_active_)
    return;
  traces_.back().closed = true;
  episode_active_ = false;
  if (recorder_ != nullptr)
    recorder_->Record(now, RecordKind::kEpisodeClosed, replica);
}

void
ReactionTracer::RecordCompletion(const ReactionTrace& trace)
{
  if (metrics_ == nullptr)
    return;
  metrics_->histogram("reaction.publish_lag_s")
      .Observe(trace.StageLatency(ReactionStage::kPublish).value());
  metrics_->histogram("reaction.observe_lag_s")
      .Observe(trace.StageLatency(ReactionStage::kObserve).value());
  metrics_->histogram("reaction.decide_lag_s")
      .Observe(trace.StageLatency(ReactionStage::kDecide).value());
  metrics_->histogram("reaction.actuate_lag_s")
      .Observe(trace.StageLatency(ReactionStage::kActuate).value());
  metrics_->histogram("reaction.end_to_end_s").Observe(trace.EndToEnd().value());
  metrics_->gauge("reaction.budget_s").Set(config_.budget.value());
  if (!trace.WithinBudget())
    metrics_->counter("reaction.over_budget").Increment();
}

}  // namespace flex::obs
