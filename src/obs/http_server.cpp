#include "http_server.hpp"

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/log.hpp"

namespace flex::obs {

namespace {

bool
SendAll(int fd, const char* data, std::size_t len)
{
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR))
        continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

const char*
HttpServer::StatusText(int status)
{
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

HttpServer::~HttpServer() { Stop(); }

void
HttpServer::Route(std::string path, Handler handler)
{
  routes_[std::move(path)] = std::move(handler);
}

bool
HttpServer::Start(int port)
{
  if (running_.load(std::memory_order_acquire))
    return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    FLEX_LOG(LogLevel::kError, "http", "socket() failed: %s",
             std::strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    FLEX_LOG(LogLevel::kError, "http", "bind/listen on port %d failed: %s",
             port, std::strerror(errno));
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
    port_ = static_cast<int>(ntohs(addr.sin_port));

  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { ServeLoop(); });
  FLEX_LOG(LogLevel::kInfo, "http", "serving on 127.0.0.1:%d", port_);
  return true;
}

void
HttpServer::Stop()
{
  if (!running_.load(std::memory_order_acquire))
    return;
  stop_.store(true, std::memory_order_release);
  // The serve loop polls with a short timeout, so it notices `stop_`
  // without needing a wake-up pipe; shutdown() additionally unblocks an
  // accept() that races the flag.
  if (listen_fd_ >= 0)
    ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable())
    thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void
HttpServer::ServeLoop()
{
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0)
      continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0)
      continue;
    HandleConnection(client);
    ::close(client);
  }
}

void
HttpServer::HandleConnection(int fd)
{
  // Read until the end of the header block; scrape requests have no
  // body. The receive timeout bounds one idle recv(); the wall deadline
  // bounds the whole header read, so a client dripping one byte per
  // second (which resets the receive timeout every time) still cannot
  // pin the serve thread.
  const auto started = std::chrono::steady_clock::now();
  timeval timeout{};
  timeout.tv_sec = static_cast<long>(config_.recv_timeout_s);
  timeout.tv_usec = static_cast<long>(
      (config_.recv_timeout_s - std::floor(config_.recv_timeout_s)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  std::string raw;
  char buffer[2048];
  bool have_header = false;
  bool too_large = false;
  bool deadline_hit = false;
  while (true) {
    have_header = raw.find("\r\n\r\n") != std::string::npos ||
                  raw.find("\n\n") != std::string::npos;
    if (have_header)
      break;
    if (raw.size() >= config_.max_request_bytes) {
      too_large = true;
      break;
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - started;
    if (elapsed.count() > config_.connection_deadline_s) {
      deadline_hit = true;
      break;
    }
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0)
      break;
    raw.append(buffer, static_cast<std::size_t>(n));
  }

  if (too_large || deadline_hit) {
    HttpResponse response;
    response.status = too_large ? 431 : 408;
    response.body = too_large
                        ? "request header block too large\n"
                        : "request not completed within connection deadline\n";
    const std::string head =
        "HTTP/1.1 " + std::to_string(response.status) + " " +
        StatusText(response.status) +
        "\r\nContent-Type: " + response.content_type +
        "\r\nContent-Length: " + std::to_string(response.body.size()) +
        "\r\nConnection: close\r\n\r\n";
    if (SendAll(fd, head.data(), head.size()))
      SendAll(fd, response.body.data(), response.body.size());
    requests_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  HttpRequest request;
  HttpResponse response;
  const std::size_t line_end = raw.find_first_of("\r\n");
  const std::string line =
      line_end == std::string::npos ? raw : raw.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos
                              ? std::string::npos
                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    response.status = 400;
    response.body = "malformed request line\n";
  } else {
    request.method = line.substr(0, sp1);
    std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t qmark = target.find('?');
    if (qmark != std::string::npos) {
      request.query = target.substr(qmark + 1);
      target.resize(qmark);
    }
    request.path = std::move(target);
    if (request.method != "GET" && request.method != "HEAD") {
      response.status = 405;
      response.body = "only GET is supported\n";
    } else {
      const auto it = routes_.find(request.path);
      if (it == routes_.end()) {
        response.status = 404;
        response.body = "unknown path: " + request.path + "\n";
      } else {
        try {
          response = it->second(request);
        } catch (const std::exception& e) {
          response = HttpResponse{};
          response.status = 500;
          response.body = std::string("handler error: ") + e.what() + "\n";
        }
      }
    }
  }

  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     StatusText(response.status) + "\r\nContent-Type: " +
                     response.content_type + "\r\nContent-Length: " +
                     std::to_string(response.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  if (SendAll(fd, head.data(), head.size()) && request.method != "HEAD")
    SendAll(fd, response.body.data(), response.body.size());
  requests_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace flex::obs
