/**
 * @file
 * Live observability plane: snapshot hub + HTTP endpoints.
 *
 * The repo's original observability (metrics registry, reaction tracer,
 * flight recorder) is export-at-end-of-run; this layer makes a running
 * harness scrapeable without perturbing it. The concurrency model is
 * one-directional publishing:
 *
 *   sim/solver thread --Publish*()--> LiveHub --Latest*()--> HTTP thread
 *
 * The hub stores deep copies under a mutex; the instrumented thread
 * copies its single-threaded state in (at sample cadence), the server
 * thread copies it out per scrape. Neither side ever touches the other
 * side's live structures, so a scraper hammering the endpoints cannot
 * change a single simulated event — the bit-identity determinism tests
 * run unchanged with a concurrent scrape loop (asserted in
 * tests/obs_http_test.cpp).
 *
 * Endpoints served by ObservabilityServer:
 *   /metrics  - Prometheus text exposition: the last published registry
 *               snapshot, live process gauges (thread-pool utilization,
 *               solver wave occupancy via AddLiveGauge), profiler phase
 *               histograms, watchdog + log-suppression counters, and a
 *               flex_build_info series carrying run-info labels.
 *   /healthz  - JSON health rollup (published invariant status +
 *               watchdog state); HTTP 503 when unhealthy or stalled.
 *   /trace    - last-N reaction episodes as a JSON array.
 *   /recorder - flight-recorder tail snapshot as JSONL.
 *   /alerts   - alert-engine state + recent transition history (JSON).
 *   /query    - ?metric=&window=&res= time-series reads from the last
 *               published TimeSeriesStore snapshot (res=0: raw points).
 */
#ifndef FLEX_OBS_HTTP_EXPORT_HPP_
#define FLEX_OBS_HTTP_EXPORT_HPP_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/alerts.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/http_server.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace flex::common {
class ThreadPool;
}  // namespace flex::common

namespace flex::obs {

/** Health rollup published by the instrumented harness. */
struct HealthSnapshot {
  bool ok = true;
  double sim_time_seconds = 0.0;
  /** Safety/invariant violations observed so far. */
  std::uint64_t violations = 0;
  /** First/most recent violation message; empty when healthy. */
  std::string detail;
};

/**
 * Thread-safe snapshot mailbox between instrumented harnesses and the
 * HTTP server. Publishing replaces the previous copy (last writer
 * wins), which is exactly right for concurrent sweep lanes sharing one
 * hub: the scrape sees *a* recent lane's state, and the lanes never
 * coordinate — determinism stays untouched.
 */
class LiveHub {
 public:
  void PublishMetrics(const MetricsSnapshot& snapshot);
  MetricsSnapshot LatestMetrics() const;

  /** Keeps the last @p tail traces of @p traces. */
  void PublishTraces(const std::vector<ReactionTrace>& traces,
                     std::size_t tail = 32);
  std::vector<ReactionTrace> LatestTraces() const;

  /** Keeps the last @p tail records of the recorder's retained window. */
  void PublishRecorderTail(const FlightRecorder& recorder,
                           std::size_t tail = 256);
  std::vector<FlightRecord> LatestRecords() const;

  void PublishHealth(const HealthSnapshot& health);
  HealthSnapshot LatestHealth() const;

  void PublishAlerts(const AlertsSnapshot& alerts);
  AlertsSnapshot LatestAlerts() const;

  void PublishSeries(const TimeSeriesSnapshot& series);
  TimeSeriesSnapshot LatestSeries() const;

  /** Publish calls of any kind (an atomic; readable from any thread). */
  std::uint64_t publish_count() const {
    return publishes_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  MetricsSnapshot metrics_;
  std::vector<ReactionTrace> traces_;
  std::vector<FlightRecord> records_;
  HealthSnapshot health_;
  AlertsSnapshot alerts_;
  TimeSeriesSnapshot series_;
  std::atomic<std::uint64_t> publishes_{0};
};

/**
 * Sanitizes a dot-separated registry name into a legal Prometheus
 * metric name with the "flex_" namespace prefix:
 * "pipeline.publish_lag_s" -> "flex_pipeline_publish_lag_s".
 */
std::string PrometheusName(const std::string& name);

/**
 * Renders a registry snapshot in Prometheus text exposition format
 * (counters gain a `_total` suffix, histograms expand to cumulative
 * `_bucket{le=...}` series plus `_sum`/`_count`). Pure function — also
 * used headless by exporters and tests.
 */
std::string SnapshotToPrometheus(const MetricsSnapshot& snapshot);

/** One reaction trace as a single-line JSON object (stable key order). */
std::string ReactionTraceToJson(const ReactionTrace& trace);

/** Parses a ReactionTraceToJson line; false on malformed input. */
bool ParseReactionTraceJson(const std::string& line, ReactionTrace* out);

/** Server tuning. */
struct ObservabilityServerConfig {
  /** TCP port; 0 binds an ephemeral port (see HttpServer::port()). */
  int port = 0;
  /** Run-info labels stamped onto the flex_build_info series. */
  std::vector<std::pair<std::string, std::string>> run_info;
  /** Connection-handling limits passed through to the HTTP server. */
  HttpServerConfig http;
};

/**
 * Extracts an (unescaped) query-string parameter: "metric=a&window=60".
 * False when @p key is absent; an empty value ("metric=") returns true.
 */
bool HttpQueryParam(const std::string& query, const std::string& key,
                    std::string* value);

/**
 * Binds a LiveHub (plus optional watchdog / profiler / live gauges) to
 * the four HTTP endpoints. The Render* methods are public so tests and
 * exporters can exercise the exact endpoint bodies without a socket.
 */
class ObservabilityServer {
 public:
  explicit ObservabilityServer(LiveHub& hub,
                               ObservabilityServerConfig config = {});

  /**
   * Registers a gauge sampled at scrape time. @p sample runs on the
   * server thread and must only read atomics (thread-pool counters,
   * solver live stats) — that contract is what keeps scrapes
   * observer-only. Call before Start().
   */
  void AddLiveGauge(std::string name, std::function<double()> sample);

  /** Convenience: flex_pool_{size,running,queued} + steals gauges. */
  void WireThreadPool(const common::ThreadPool& pool);

  /** Watchdog surfaced in /healthz and /metrics; not owned. */
  void SetWatchdog(const StallWatchdog* watchdog) { watchdog_ = watchdog; }

  /** Profiler whose phase histograms join /metrics; not owned. */
  void SetProfiler(const Profiler* profiler) { profiler_ = profiler; }

  bool Start() { return http_.Start(config_.port); }
  void Stop() { http_.Stop(); }
  int port() const { return http_.port(); }
  bool running() const { return http_.running(); }
  std::uint64_t requests_served() const { return http_.requests_served(); }

  /** Endpoint bodies (also served over HTTP once Start()ed). */
  std::string RenderMetrics() const;
  /**
   * @p http_status (optional out): 200 healthy, 503 otherwise. The
   * rollup folds in the last published alert state; only a firing
   * page-severity alert (not warn/info) degrades the status code.
   */
  std::string RenderHealth(int* http_status = nullptr) const;
  std::string RenderTrace() const;
  std::string RenderRecorder() const;
  std::string RenderAlerts() const;
  /**
   * Body for /query. @p resolution_s 0 serves raw points; otherwise
   * the finest tier at least as coarse as requested. @p window_s 0
   * serves the full retained window. 404 on an unknown metric.
   */
  std::string RenderQuery(const std::string& metric, double window_s,
                          double resolution_s,
                          int* http_status = nullptr) const;

 private:
  LiveHub& hub_;
  ObservabilityServerConfig config_;
  const StallWatchdog* watchdog_ = nullptr;
  const Profiler* profiler_ = nullptr;
  std::vector<std::pair<std::string, std::function<double()>>> live_gauges_;
  HttpServer http_;
};

/**
 * Folds the process-wide FLEX_LOG_RATE_LIMITED suppression total (see
 * LogSuppressedTotal()) into @p metrics as the "log.suppressed_total"
 * counter, so dropped diagnostics are visible in every snapshot export
 * and on /metrics instead of vanishing silently.
 */
void UpdateLogMetrics(MetricsRegistry& metrics);

}  // namespace flex::obs

#endif  // FLEX_OBS_HTTP_EXPORT_HPP_
