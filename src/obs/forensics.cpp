#include "forensics.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/export.hpp"

namespace flex::obs {

namespace {

/** %.9g, matching the metric exporters' number formatting. */
std::string
Num(double value)
{
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string
EscapeJson(const std::string& text)
{
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::size_t
ValueOffset(const std::string& json, const char* key)
{
  const std::string needle = std::string("\"") + key + "\":";
  std::size_t at = json.find(needle);
  if (at == std::string::npos)
    return std::string::npos;
  at += needle.size();
  // The manifest is pretty-printed with a space after each colon.
  while (at < json.size() && (json[at] == ' ' || json[at] == '\t'))
    ++at;
  return at;
}

bool
ParseNumberField(const std::string& json, const char* key, double* out)
{
  const std::size_t at = ValueOffset(json, key);
  if (at == std::string::npos)
    return false;
  char* end = nullptr;
  const double value = std::strtod(json.c_str() + at, &end);
  if (end == json.c_str() + at)
    return false;
  *out = value;
  return true;
}

bool
ParseStringField(const std::string& json, const char* key, std::string* out)
{
  std::size_t at = ValueOffset(json, key);
  if (at == std::string::npos || at >= json.size() || json[at] != '"')
    return false;
  ++at;
  std::string value;
  while (at < json.size() && json[at] != '"') {
    char c = json[at];
    if (c == '\\' && at + 1 < json.size()) {
      const char next = json[at + 1];
      switch (next) {
        case 'n':
          c = '\n';
          break;
        case 't':
          c = '\t';
          break;
        case 'r':
          c = '\r';
          break;
        case 'u': {
          if (at + 5 >= json.size())
            return false;
          const std::string hex = json.substr(at + 2, 4);
          c = static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
          at += 4;
          break;
        }
        default:
          c = next;
      }
      ++at;
    }
    value += c;
    ++at;
  }
  if (at >= json.size())
    return false;
  *out = std::move(value);
  return true;
}

bool
ParseBoolField(const std::string& json, const char* key, bool* out)
{
  const std::size_t at = ValueOffset(json, key);
  if (at == std::string::npos)
    return false;
  if (json.compare(at, 4, "true") == 0) {
    *out = true;
    return true;
  }
  if (json.compare(at, 5, "false") == 0) {
    *out = false;
    return true;
  }
  return false;
}

bool
ReadFile(const std::string& path, std::string* out)
{
  std::ifstream stream(path, std::ios::binary);
  if (!stream)
    return false;
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  *out = buffer.str();
  return stream.good() || stream.eof();
}

bool
Fail(std::string* error, std::string message)
{
  if (error != nullptr)
    *error = std::move(message);
  return false;
}

std::string
ManifestJson(const BundleSpec& spec)
{
  std::uint64_t first_sequence = 0;
  std::uint64_t last_sequence = 0;
  if (!spec.records.empty()) {
    first_sequence = spec.records.front().sequence;
    last_sequence = spec.records.back().sequence;
  }
  std::string out = "{\n";
  out += "  \"format\": \"" + std::string(kBundleFormat) + "\",\n";
  out += "  \"trigger\": \"" + EscapeJson(spec.trigger) + "\",\n";
  out += "  \"scenario\": \"" + EscapeJson(spec.scenario) + "\",\n";
  out += "  \"seed\": " + std::to_string(spec.seed) + ",\n";
  out += "  \"sim_time_s\": " + Num(spec.sim_time_s) + ",\n";
  out += "  \"horizon_s\": " + Num(spec.horizon_s) + ",\n";
  out += std::string("  \"replayable\": ") +
         (spec.replayable ? "true" : "false") + ",\n";
  out += "  \"first_sequence\": " + std::to_string(first_sequence) + ",\n";
  out += "  \"last_sequence\": " + std::to_string(last_sequence) + ",\n";
  out += "  \"num_records\": " + std::to_string(spec.records.size()) + ",\n";
  out += "  \"notes\": [";
  for (std::size_t i = 0; i < spec.notes.size(); ++i) {
    if (i > 0)
      out += ", ";
    out += "\"" + EscapeJson(spec.notes[i]) + "\"";
  }
  out += "]\n}\n";
  return out;
}

}  // namespace

bool
WriteForensicBundle(const std::string& dir, const BundleSpec& spec,
                    std::string* error)
{
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec)
    return Fail(error, "cannot create bundle dir " + dir + ": " + ec.message());

  const std::filesystem::path root(dir);
  // events.jsonl first: the timeline is the heart of the bundle, and the
  // manifest last so its presence marks a complete dump.
  if (!WriteFile((root / "events.jsonl").string(),
                 RecordsToJsonl(spec.records)))
    return Fail(error, "cannot write events.jsonl under " + dir);
  if (spec.metrics != nullptr) {
    if (!WriteFile((root / "metrics.json").string(),
                   SnapshotToJson(spec.metrics->Snapshot())))
      return Fail(error, "cannot write metrics.json under " + dir);
  }
  if (spec.tracer != nullptr) {
    if (!WriteFile((root / "traces.jsonl").string(),
                   TracesToJsonl(*spec.tracer)))
      return Fail(error, "cannot write traces.jsonl under " + dir);
  }
  if (!spec.racks_csv.empty()) {
    if (!WriteFile((root / "racks.csv").string(), spec.racks_csv))
      return Fail(error, "cannot write racks.csv under " + dir);
  }
  if (!spec.fault_plan_text.empty()) {
    if (!WriteFile((root / "fault_plan.txt").string(), spec.fault_plan_text))
      return Fail(error, "cannot write fault_plan.txt under " + dir);
  }
  if (!spec.fault_plan_jsonl.empty()) {
    if (!WriteFile((root / "fault_plan.jsonl").string(),
                   spec.fault_plan_jsonl))
      return Fail(error, "cannot write fault_plan.jsonl under " + dir);
  }
  if (!spec.timeseries_jsonl.empty()) {
    if (!WriteFile((root / "timeseries.jsonl").string(),
                   spec.timeseries_jsonl))
      return Fail(error, "cannot write timeseries.jsonl under " + dir);
  }
  if (!spec.alerts_jsonl.empty()) {
    if (!WriteFile((root / "alerts.jsonl").string(), spec.alerts_jsonl))
      return Fail(error, "cannot write alerts.jsonl under " + dir);
  }
  if (!WriteFile((root / "manifest.json").string(), ManifestJson(spec)))
    return Fail(error, "cannot write manifest.json under " + dir);
  return true;
}

bool
LoadBundleManifest(const std::string& dir, BundleManifest* out,
                   std::string* error)
{
  const std::string path =
      (std::filesystem::path(dir) / "manifest.json").string();
  std::string json;
  if (!ReadFile(path, &json))
    return Fail(error, "cannot read " + path);

  BundleManifest manifest;
  if (!ParseStringField(json, "format", &manifest.format))
    return Fail(error, path + ": missing format field");
  if (manifest.format != kBundleFormat)
    return Fail(error, path + ": unsupported format '" + manifest.format + "'");
  ParseStringField(json, "trigger", &manifest.trigger);
  ParseStringField(json, "scenario", &manifest.scenario);
  double number = 0.0;
  if (ParseNumberField(json, "seed", &number))
    manifest.seed = static_cast<std::uint64_t>(number);
  ParseNumberField(json, "sim_time_s", &manifest.sim_time_s);
  ParseNumberField(json, "horizon_s", &manifest.horizon_s);
  ParseBoolField(json, "replayable", &manifest.replayable);
  if (ParseNumberField(json, "first_sequence", &number))
    manifest.first_sequence = static_cast<std::uint64_t>(number);
  if (ParseNumberField(json, "last_sequence", &number))
    manifest.last_sequence = static_cast<std::uint64_t>(number);
  if (ParseNumberField(json, "num_records", &number))
    manifest.num_records = static_cast<std::uint64_t>(number);

  // Notes: each array element is a JSON string. Walk the array tracking
  // string state rather than find()ing ']' — violation notes carry tags
  // like "[ups-trip]" whose ']' would otherwise end the array early.
  std::size_t at = ValueOffset(json, "notes");
  if (at != std::string::npos)
    at = json.find('[', at);
  if (at != std::string::npos) {
    ++at;
    while (at < json.size() && json[at] != ']') {
      if (json[at] != '"') {
        ++at;  // whitespace or the comma between elements
        continue;
      }
      std::size_t end = at + 1;  // find the unescaped closing quote
      while (end < json.size() && json[end] != '"')
        end += (json[end] == '\\') ? 2 : 1;
      if (end >= json.size())
        break;
      // Reuse the string parser by synthesizing a key-value fragment.
      const std::string fragment =
          "\"note\":" + json.substr(at, end - at + 1);
      std::string note;
      if (!ParseStringField(fragment, "note", &note))
        break;
      manifest.notes.push_back(note);
      at = end + 1;
    }
  }

  *out = std::move(manifest);
  return true;
}

bool
LoadForensicBundle(const std::string& dir, LoadedBundle* out,
                   std::string* error)
{
  LoadedBundle bundle;
  if (!LoadBundleManifest(dir, &bundle.manifest, error))
    return false;

  const std::filesystem::path root(dir);
  std::string jsonl;
  const std::string events_path = (root / "events.jsonl").string();
  if (!ReadFile(events_path, &jsonl))
    return Fail(error, "cannot read " + events_path);
  std::string parse_error;
  if (!ParseRecordsJsonl(jsonl, &bundle.records, &parse_error))
    return Fail(error, events_path + ": " + parse_error);

  const std::string plan_path = (root / "fault_plan.jsonl").string();
  if (std::filesystem::exists(plan_path)) {
    if (!ReadFile(plan_path, &bundle.fault_plan_jsonl))
      return Fail(error, "cannot read " + plan_path);
  }

  *out = std::move(bundle);
  return true;
}

std::string
UniqueBundleDir(const std::string& root, const std::string& stem)
{
  const std::filesystem::path base(root);
  std::filesystem::path candidate = base / stem;
  for (int suffix = 2; std::filesystem::exists(candidate); ++suffix)
    candidate = base / (stem + "-" + std::to_string(suffix));
  return candidate.string();
}

std::string
ForensicsRootDir(const std::string& fallback)
{
  const char* env = std::getenv("FLEX_FORENSICS_DIR");
  if (env != nullptr && env[0] != '\0')
    return env;
  return fallback;
}

}  // namespace flex::obs
