/**
 * @file
 * Forensic bundles: on-disk post-mortem snapshots of a run.
 *
 * A bundle is a directory holding everything needed to understand — and
 * where possible deterministically re-execute — a failed episode:
 *
 *   manifest.json     trigger, scenario tag, seed, record window, notes
 *   events.jsonl      the flight recorder's retained timeline
 *   metrics.json      full MetricsRegistry snapshot at dump time
 *   traces.jsonl      reaction traces (when a tracer was attached)
 *   racks.csv         per-rack power / category / actuation state
 *   fault_plan.txt    human-readable fault plan (when one was armed)
 *   fault_plan.jsonl  machine-readable plan, written by the fault layer
 *   timeseries.jsonl  time-series store contents (when a store existed)
 *   alerts.jsonl      alert-transition timeline (when rules were armed)
 *
 * This layer is scenario-agnostic: it serializes whatever the caller
 * puts into the BundleSpec. The fault module's forensics.hpp builds the
 * replayable fault-fuzz bundles on top of it; the emulation benches dump
 * non-replayable "crash dump" bundles for triage.
 */
#ifndef FLEX_OBS_FORENSICS_HPP_
#define FLEX_OBS_FORENSICS_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace flex::obs {

inline constexpr const char* kBundleFormat = "flex-forensic-bundle-v1";

/** Everything a bundle dump captures. Pointers are optional, not owned. */
struct BundleSpec {
  /** What fired the dump: "invariant-violation", "budget-miss", "manual". */
  std::string trigger = "manual";
  /** Harness tag: "fault-fuzz", "emulation", ... */
  std::string scenario;
  std::uint64_t seed = 0;
  double sim_time_s = 0.0;
  double horizon_s = 0.0;
  /** True when seed + fault plan deterministically re-execute the run. */
  bool replayable = false;

  std::vector<FlightRecord> records;
  const MetricsRegistry* metrics = nullptr;
  const ReactionTracer* tracer = nullptr;
  /** Human-readable fault plan listing (fault_plan.txt). */
  std::string fault_plan_text;
  /** Machine-readable plan timeline (fault_plan.jsonl). */
  std::string fault_plan_jsonl;
  /** Per-rack state table, already in CSV form (racks.csv). */
  std::string racks_csv;
  /** TimeSeriesStore::ToJsonl() dump (timeseries.jsonl). */
  std::string timeseries_jsonl;
  /** AlertEngine::TimelineJsonl() dump (alerts.jsonl). */
  std::string alerts_jsonl;
  /** Free-text notes — typically the violation messages. */
  std::vector<std::string> notes;
};

/**
 * Writes the bundle into directory @p dir (created, parents included).
 * Returns false and fills @p error on I/O failure; partial bundles are
 * possible on failure and carry no manifest marker.
 */
bool WriteForensicBundle(const std::string& dir, const BundleSpec& spec,
                         std::string* error = nullptr);

/** The parsed manifest.json. */
struct BundleManifest {
  std::string format;
  std::string trigger;
  std::string scenario;
  std::uint64_t seed = 0;
  double sim_time_s = 0.0;
  double horizon_s = 0.0;
  bool replayable = false;
  std::uint64_t first_sequence = 0;
  std::uint64_t last_sequence = 0;
  std::uint64_t num_records = 0;
  std::vector<std::string> notes;
};

/** Loads and parses @p dir/manifest.json. */
bool LoadBundleManifest(const std::string& dir, BundleManifest* out,
                        std::string* error = nullptr);

/** A loaded bundle: manifest plus the event timeline. */
struct LoadedBundle {
  BundleManifest manifest;
  std::vector<FlightRecord> records;
  /** fault_plan.jsonl contents; empty when the bundle has none. */
  std::string fault_plan_jsonl;
};

/** Loads manifest + events.jsonl (+ fault_plan.jsonl when present). */
bool LoadForensicBundle(const std::string& dir, LoadedBundle* out,
                        std::string* error = nullptr);

/**
 * Picks a fresh bundle directory under @p root: "<root>/<stem>", or
 * "<root>/<stem>-2", ... when taken. Does not create the directory.
 */
std::string UniqueBundleDir(const std::string& root, const std::string& stem);

/**
 * Forensics root directory: the FLEX_FORENSICS_DIR environment variable
 * when set and non-empty, else @p fallback.
 */
std::string ForensicsRootDir(const std::string& fallback = "forensics");

}  // namespace flex::obs

#endif  // FLEX_OBS_FORENSICS_HPP_
