/**
 * @file
 * Simulated-time-aware metrics registry.
 *
 * Counters, gauges, and fixed-bucket latency histograms keyed by
 * hierarchical dot names ("pipeline.publish_lag_s",
 * "controller.decision_us"). Snapshots are stamped with
 * sim::EventQueue::Now() when a clock is bound, so two runs of the same
 * seed produce bit-identical exports — the property the seed-replay and
 * perf-trajectory tooling (BENCH_*.json) depends on.
 *
 * Histograms keep only fixed bucket counts plus exact count/sum/min/max,
 * so memory stays O(buckets) no matter how hot the instrumented path is;
 * quantiles are interpolated within the containing bucket.
 */
#ifndef FLEX_OBS_METRICS_HPP_
#define FLEX_OBS_METRICS_HPP_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace flex::sim {
class EventQueue;
}  // namespace flex::sim

namespace flex::obs {

/** Monotonically increasing count (events, commands, drops). */
class Counter {
 public:
  void
  Increment(double delta = 1.0)
  {
    value_ += delta;
  }

  double value() const { return value_; }
  void Reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/** Last-write-wins instantaneous value (state of charge, queue depth). */
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }
  void Reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/** Bucket layout of a histogram. */
struct HistogramConfig {
  /**
   * Ascending upper bucket edges. A sample lands in the first bucket
   * whose edge is >= the sample; samples above the last edge land in an
   * implicit overflow bucket.
   */
  std::vector<double> edges;

  /** Geometric edges: first, first*factor, ... (count edges). */
  static HistogramConfig Exponential(double first, double factor, int count);

  /** Default layout for simulated-seconds latencies (1 ms .. ~65 s). */
  static HistogramConfig LatencySeconds();

  /** Default layout for wall-clock microsecond timings (1 us .. ~1 s). */
  static HistogramConfig WallMicros();
};

/** Fixed-bucket histogram with exact count/sum/min/max. */
class Histogram {
 public:
  explicit Histogram(HistogramConfig config);

  void Observe(double sample);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  /**
   * Quantile estimate for @p q in [0, 1], linearly interpolated inside
   * the containing bucket and clamped to the exact [min, max] range so
   * p0/p100 are exact and single-sample histograms report that sample.
   */
  double Quantile(double q) const;

  const std::vector<double>& edges() const { return edges_; }
  /** Per-bucket counts; the last entry is the overflow bucket. */
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  /**
   * Folds @p other into this histogram (bucket-wise sums, exact
   * count/sum/min/max). Throws ConfigError when the bucket layouts
   * differ — merging is only meaningful for identical edges, e.g. the
   * profiler's per-thread aggregates of one phase.
   */
  void Merge(const Histogram& other);

  void Reset();

 private:
  std::vector<double> edges_;
  std::vector<std::uint64_t> counts_;  // edges_.size() + 1 (overflow)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/** What a snapshot row describes. */
enum class MetricKind { kCounter, kGauge, kHistogram };

const char* MetricKindName(MetricKind kind);

/** One exported metric at snapshot time. */
struct MetricRow {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  /** Counter / gauge value (unused for histograms). */
  double value = 0.0;
  /** Histogram summary (unused for counters / gauges). */
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

/** A full registry export, stamped with simulated time. */
struct MetricsSnapshot {
  double sim_time_seconds = 0.0;
  std::vector<MetricRow> rows;  ///< sorted by name

  /** Row lookup by exact name; nullptr when absent. */
  const MetricRow* Find(const std::string& name) const;
};

/**
 * Builds a synthesized MetricsSnapshot without a registry, keeping the
 * sorted-rows contract mechanically instead of by caller discipline.
 * Headless harnesses (sweep lanes, the fleet engine's rollup) push
 * rows in any order and Build() sorts once. Reusable: Build() recycles
 * the output snapshot's row storage back into the builder, so the two
 * vectors ping-pong instead of regrowing. Callers on a zero-allocation
 * hot path should instead build their snapshot once and update row
 * values in place (the fleet barrier does this).
 */
class MetricsSnapshotBuilder {
 public:
  /** Appends a gauge/counter row (histogram rows are registry-only). */
  void Push(std::string name, MetricKind kind, double value);
  void Gauge(std::string name, double value) {
    Push(std::move(name), MetricKind::kGauge, value);
  }
  void Counter(std::string name, double value) {
    Push(std::move(name), MetricKind::kCounter, value);
  }

  /**
   * Sorts the accumulated rows by name and moves them into @p out
   * (whose previous rows vector is recycled as the builder's next
   * buffer — the allocation ping-pongs instead of growing).
   */
  void Build(double sim_time_seconds, MetricsSnapshot* out);

 private:
  std::vector<MetricRow> rows_;
};

/**
 * The registry. Metric objects are created on first use and live as
 * long as the registry, so instrumented components can cache the
 * returned references and skip the name lookup on hot paths.
 */
class MetricsRegistry {
 public:
  explicit MetricsRegistry(const sim::EventQueue* clock = nullptr);

  /** Binds / replaces the clock used to stamp snapshots. */
  void SetClock(const sim::EventQueue* clock) { clock_ = clock; }

  /** Finds or creates; throws ConfigError on a kind mismatch. */
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /** @p config applies only on first creation of @p name. */
  Histogram& histogram(const std::string& name,
                       HistogramConfig config = HistogramConfig::LatencySeconds());

  /** All metrics, sorted by name, stamped with the clock's Now(). */
  MetricsSnapshot Snapshot() const;

  /** Zeroes every metric but keeps registrations (and cached refs). */
  void Reset();

  std::size_t size() const { return metrics_.size(); }

 private:
  struct Metric {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Metric& FindOrCreate(const std::string& name, MetricKind kind,
                       const HistogramConfig* config);

  const sim::EventQueue* clock_;
  // std::map keeps snapshot order deterministic and references stable.
  std::map<std::string, Metric> metrics_;
};

}  // namespace flex::obs

#endif  // FLEX_OBS_METRICS_HPP_
