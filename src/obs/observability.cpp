#include "observability.hpp"

#include "sim/event_queue.hpp"

namespace flex::obs {

Observability::Observability(ObservabilityConfig config)
    : recorder_(config.recorder), tracer_(config.tracer, &metrics_)
{
  tracer_.SetRecorder(&recorder_);
}

void
Observability::BindClock(const sim::EventQueue& queue)
{
  metrics_.SetClock(&queue);
  SetLogClock(&queue);
}

}  // namespace flex::obs
