#include "flight_recorder.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/error.hpp"

namespace flex::obs {

namespace {

/** %.9g, matching the metric exporters' number formatting. */
std::string
Num(double value)
{
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

/** Minimal JSON string escaping for the detail field. */
std::string
EscapeJson(const std::string& text)
{
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/**
 * Finds `"key":` in @p json and returns the character offset just past
 * the colon, or npos.
 */
std::size_t
ValueOffset(const std::string& json, const char* key)
{
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = json.find(needle);
  return at == std::string::npos ? std::string::npos : at + needle.size();
}

bool
ParseNumberField(const std::string& json, const char* key, double* out)
{
  const std::size_t at = ValueOffset(json, key);
  if (at == std::string::npos)
    return false;
  char* end = nullptr;
  const double value = std::strtod(json.c_str() + at, &end);
  if (end == json.c_str() + at)
    return false;
  *out = value;
  return true;
}

bool
ParseStringField(const std::string& json, const char* key, std::string* out)
{
  std::size_t at = ValueOffset(json, key);
  if (at == std::string::npos || at >= json.size() || json[at] != '"')
    return false;
  ++at;
  std::string value;
  while (at < json.size() && json[at] != '"') {
    char c = json[at];
    if (c == '\\' && at + 1 < json.size()) {
      const char next = json[at + 1];
      switch (next) {
        case 'n':
          c = '\n';
          break;
        case 't':
          c = '\t';
          break;
        case 'r':
          c = '\r';
          break;
        case 'u': {
          // Only the \u00XX control-character escapes we emit.
          if (at + 5 >= json.size())
            return false;
          const std::string hex = json.substr(at + 2, 4);
          c = static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
          at += 4;
          break;
        }
        default:
          c = next;
      }
      ++at;
    }
    value += c;
    ++at;
  }
  if (at >= json.size())
    return false;  // unterminated string
  *out = std::move(value);
  return true;
}

}  // namespace

const char*
RecordKindName(RecordKind kind)
{
  switch (kind) {
    case RecordKind::kAnnotation:
      return "annotation";
    case RecordKind::kMeterSample:
      return "meter_sample";
    case RecordKind::kDetection:
      return "detection";
    case RecordKind::kDecision:
      return "decision";
    case RecordKind::kEnforced:
      return "enforced";
    case RecordKind::kEpisodeClosed:
      return "episode_closed";
    case RecordKind::kFaultBegin:
      return "fault_begin";
    case RecordKind::kFaultRepair:
      return "fault_repair";
    case RecordKind::kViolation:
      return "violation";
    case RecordKind::kBatteryTrip:
      return "battery_trip";
    case RecordKind::kRackCommand:
      return "rack_command";
    case RecordKind::kAlert:
      return "alert";
  }
  return "unknown";
}

bool
ParseRecordKind(const std::string& name, RecordKind* out)
{
  static const RecordKind kAll[] = {
      RecordKind::kAnnotation,    RecordKind::kMeterSample,
      RecordKind::kDetection,     RecordKind::kDecision,
      RecordKind::kEnforced,      RecordKind::kEpisodeClosed,
      RecordKind::kFaultBegin,    RecordKind::kFaultRepair,
      RecordKind::kViolation,     RecordKind::kBatteryTrip,
      RecordKind::kRackCommand,  RecordKind::kAlert,
  };
  for (const RecordKind kind : kAll) {
    if (name == RecordKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

FlightRecorder::FlightRecorder(RecorderConfig config)
{
  FLEX_REQUIRE(config.capacity > 0, "flight recorder capacity must be > 0");
  ring_.resize(config.capacity);
}

void
FlightRecorder::Record(Seconds t, RecordKind kind, int a, int b, double value,
                       std::string detail)
{
  FlightRecord& slot = ring_[head_];
  slot.sequence = next_sequence_++;
  slot.t = t.value();
  slot.kind = kind;
  slot.a = a;
  slot.b = b;
  slot.value = value;
  slot.detail = std::move(detail);
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size())
    ++size_;
  else
    ++dropped_;
}

std::vector<FlightRecord>
FlightRecorder::Records() const
{
  std::vector<FlightRecord> out;
  out.reserve(size_);
  // Oldest record sits at head_ once the ring has wrapped, at 0 before.
  const std::size_t start = size_ < ring_.size() ? 0 : head_;
  for (std::size_t i = 0; i < size_; ++i)
    out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

void
FlightRecorder::Clear()
{
  head_ = 0;
  size_ = 0;
}

std::string
RecordToJson(const FlightRecord& record)
{
  std::string out = "{\"seq\":" + std::to_string(record.sequence);
  out += ",\"t\":" + Num(record.t);
  out += ",\"kind\":\"";
  out += RecordKindName(record.kind);
  out += "\",\"a\":" + std::to_string(record.a);
  out += ",\"b\":" + std::to_string(record.b);
  out += ",\"value\":" + Num(record.value);
  out += ",\"detail\":\"" + EscapeJson(record.detail) + "\"}";
  return out;
}

std::string
RecordsToJsonl(const std::vector<FlightRecord>& records)
{
  std::string out;
  for (const FlightRecord& record : records) {
    out += RecordToJson(record);
    out += '\n';
  }
  return out;
}

bool
ParseRecordJson(const std::string& line, FlightRecord* out)
{
  double seq = 0.0;
  double t = 0.0;
  double a = 0.0;
  double b = 0.0;
  double value = 0.0;
  std::string kind_name;
  std::string detail;
  if (!ParseNumberField(line, "seq", &seq) ||
      !ParseNumberField(line, "t", &t) ||
      !ParseStringField(line, "kind", &kind_name) ||
      !ParseNumberField(line, "a", &a) ||
      !ParseNumberField(line, "b", &b) ||
      !ParseNumberField(line, "value", &value) ||
      !ParseStringField(line, "detail", &detail))
    return false;
  RecordKind kind;
  if (!ParseRecordKind(kind_name, &kind))
    return false;
  out->sequence = static_cast<std::uint64_t>(seq);
  out->t = t;
  out->kind = kind;
  out->a = static_cast<int>(a);
  out->b = static_cast<int>(b);
  out->value = value;
  out->detail = std::move(detail);
  return true;
}

bool
ParseRecordsJsonl(const std::string& jsonl, std::vector<FlightRecord>* out,
                  std::string* error)
{
  out->clear();
  std::size_t start = 0;
  std::size_t line_number = 0;
  while (start < jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    if (end == std::string::npos)
      end = jsonl.size();
    ++line_number;
    const std::string line = jsonl.substr(start, end - start);
    start = end + 1;
    if (line.empty())
      continue;
    FlightRecord record;
    if (!ParseRecordJson(line, &record)) {
      if (error != nullptr)
        *error = "malformed record at line " + std::to_string(line_number);
      return false;
    }
    out->push_back(std::move(record));
  }
  return true;
}

std::string
RecordDivergence::Summary() const
{
  return "seq " + std::to_string(sequence) + " field '" + field +
         "': expected " + expected + ", got " + actual;
}

std::optional<RecordDivergence>
FirstDivergence(const std::vector<FlightRecord>& expected,
                const std::vector<FlightRecord>& actual)
{
  std::map<std::uint64_t, const FlightRecord*> by_sequence;
  for (const FlightRecord& record : actual)
    by_sequence[record.sequence] = &record;

  for (const FlightRecord& want : expected) {
    RecordDivergence divergence;
    divergence.sequence = want.sequence;
    const auto it = by_sequence.find(want.sequence);
    if (it == by_sequence.end()) {
      divergence.field = "missing";
      divergence.expected = RecordToJson(want);
      divergence.actual = "(no record with this sequence)";
      return divergence;
    }
    const FlightRecord& got = *it->second;
    if (want.kind != got.kind) {
      divergence.field = "kind";
      divergence.expected = RecordKindName(want.kind);
      divergence.actual = RecordKindName(got.kind);
      return divergence;
    }
    if (Num(want.t) != Num(got.t)) {
      divergence.field = "t";
      divergence.expected = Num(want.t);
      divergence.actual = Num(got.t);
      return divergence;
    }
    if (want.a != got.a) {
      divergence.field = "a";
      divergence.expected = std::to_string(want.a);
      divergence.actual = std::to_string(got.a);
      return divergence;
    }
    if (want.b != got.b) {
      divergence.field = "b";
      divergence.expected = std::to_string(want.b);
      divergence.actual = std::to_string(got.b);
      return divergence;
    }
    if (Num(want.value) != Num(got.value)) {
      divergence.field = "value";
      divergence.expected = Num(want.value);
      divergence.actual = Num(got.value);
      return divergence;
    }
    if (want.detail != got.detail) {
      divergence.field = "detail";
      divergence.expected = want.detail;
      divergence.actual = got.detail;
      return divergence;
    }
  }
  return std::nullopt;
}

}  // namespace flex::obs
