/**
 * @file
 * Deterministic multi-resolution time-series store.
 *
 * Retains a bounded history of every metric the registry exports:
 * a raw ring of (t, value) points per series plus any number of
 * downsampled tiers, each a fixed-capacity ring of per-bucket
 * min/max/mean/last aggregates. Everything is keyed by simulated time,
 * so two runs of one seed produce bit-identical store contents — the
 * Fingerprint() the determinism suite compares across sweep lanes and
 * thread counts.
 *
 * Memory discipline: every ring is preallocated the first time its
 * series is seen, so steady-state sampling performs no allocation (the
 * only allocating path is registering a brand-new metric name, which
 * the registry also bounds). Queries and snapshots allocate freely —
 * they run off the hot path, on the HTTP thread's copy or in tests.
 *
 * Histogram rows are retained as their p99 — the quantile the reaction
 * budget is written against — so "history of a histogram" means
 * "history of its p99" everywhere in this file.
 */
#ifndef FLEX_OBS_TIMESERIES_HPP_
#define FLEX_OBS_TIMESERIES_HPP_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace flex::obs {

/** One downsampled tier: fixed-width buckets in a fixed-capacity ring. */
struct TierConfig {
  double resolution_s = 30.0;   ///< bucket width in simulated seconds
  std::size_t capacity = 240;   ///< finalized buckets retained
};

/** Store shape; applied identically to every series. */
struct TimeSeriesConfig {
  /** Raw (t, value) points retained per series. */
  std::size_t raw_capacity = 512;
  /** Downsampled tiers, finest first. Clear for a raw-only store. */
  std::vector<TierConfig> tiers{{30.0, 240}, {300.0, 240}};
  /** Series beyond this are dropped (and counted), never resized. */
  std::size_t max_series = 256;
};

/** One raw sample. */
struct RawPoint {
  double t = 0.0;
  double value = 0.0;
};

/** One downsampled bucket. `t` is the bucket start (inclusive). */
struct AggPoint {
  double t = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double last = 0.0;
  std::uint64_t count = 0;
};

/** Deep copy of one series for the live plane / tests. */
struct SeriesSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kGauge;
  std::vector<RawPoint> raw;  ///< oldest first
  struct TierData {
    double resolution_s = 0.0;
    /** Finalized buckets oldest first; the open bucket, if any, is last. */
    std::vector<AggPoint> points;
  };
  std::vector<TierData> tiers;
};

/** Deep copy of the whole store (what LiveHub publishes for /query). */
struct TimeSeriesSnapshot {
  double last_sample_t = 0.0;
  std::uint64_t total_samples = 0;
  std::vector<SeriesSnapshot> series;  ///< sorted by name

  const SeriesSnapshot* Find(const std::string& name) const;
};

/** QueryAgg result: which tier answered plus its points. */
struct AggQueryResult {
  double resolution_s = 0.0;
  std::vector<AggPoint> points;
};

/**
 * The store. Single-threaded like the simulation; share it across
 * threads only via Snapshot() copies.
 */
class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(TimeSeriesConfig config = {});

  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  /**
   * Appends every row of @p snapshot at its sim_time_seconds stamp.
   * Counters and gauges record their value; histograms record their
   * p99. A snapshot stamped at the same time as the previous Sample()
   * call is skipped wholesale, so harnesses that publish once more at
   * shutdown cannot double-count the final tick.
   */
  void Sample(const MetricsSnapshot& snapshot);

  /**
   * Appends one point to @p name (registering the series on first
   * sight). Out-of-order appends (t below the series' latest) are
   * dropped and counted; equal-time appends are retained.
   */
  void Append(const std::string& name, MetricKind kind, double t,
              double value);

  /** Raw points with t >= latest - window_s (window <= 0: all). */
  std::vector<RawPoint> QueryRaw(const std::string& name,
                                 double window_s) const;

  /**
   * Downsampled points from the finest tier whose resolution is >=
   * @p resolution_s (the coarsest tier when none is), bucket start >=
   * latest - window_s (window <= 0: all). The open bucket is included
   * as the final point. Empty result when the store has no tiers or
   * the series is unknown.
   */
  AggQueryResult QueryAgg(const std::string& name, double resolution_s,
                          double window_s) const;

  /** Latest appended value; false when the series is unknown/empty. */
  bool LatestValue(const std::string& name, double* value) const;

  /**
   * Simulated time of the last append whose value differed from its
   * predecessor (the first append counts as a change). Negative when
   * the series is unknown — the staleness rule treats that as fresh.
   */
  double LastChangeTime(const std::string& name) const;

  /**
   * Value change over the trailing window: latest minus the newest
   * retained point at or before latest - window_s (clamped to the
   * oldest retained point after eviction). False when unknown/empty.
   */
  bool DeltaOver(const std::string& name, double window_s,
                 double* delta) const;

  /** FNV-1a over every series name, kind, ring, and open bucket. */
  std::uint64_t Fingerprint() const;

  /** Deep copy, series sorted by name. */
  TimeSeriesSnapshot Snapshot() const;

  /** One JSON object per series per line (forensic-bundle export). */
  std::string ToJsonl() const;

  std::size_t series_count() const { return series_.size(); }
  std::uint64_t total_samples() const { return total_samples_; }
  std::uint64_t dropped_series() const { return dropped_series_; }
  std::uint64_t out_of_order_drops() const { return out_of_order_; }
  double last_sample_t() const { return last_sample_t_; }
  const TimeSeriesConfig& config() const { return config_; }

 private:
  struct Tier {
    double resolution_s = 0.0;
    std::vector<AggPoint> ring;  ///< capacity slots, preallocated
    std::size_t head = 0;        ///< next write slot
    std::size_t size = 0;
    // Open (not yet finalized) bucket accumulator.
    bool open = false;
    double bucket_start = 0.0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
    double last = 0.0;
    std::uint64_t count = 0;
  };

  struct Series {
    std::string name;
    MetricKind kind = MetricKind::kGauge;
    std::vector<RawPoint> raw;  ///< capacity slots, preallocated
    std::size_t head = 0;
    std::size_t size = 0;
    bool any = false;
    double last_t = 0.0;
    double last_value = 0.0;
    double last_change_t = 0.0;
    std::vector<Tier> tiers;
  };

  Series* FindSeries(const std::string& name);
  const Series* FindSeries(const std::string& name) const;
  void AppendToSeries(Series& series, double t, double value);
  static void FinalizeBucket(Tier& tier);

  TimeSeriesConfig config_;
  std::map<std::string, std::size_t> index_;  ///< name -> series_ slot
  std::vector<Series> series_;
  double last_sample_t_ = -1.0;
  std::uint64_t total_samples_ = 0;
  std::uint64_t dropped_series_ = 0;
  std::uint64_t out_of_order_ = 0;
};

}  // namespace flex::obs

#endif  // FLEX_OBS_TIMESERIES_HPP_
